package ran

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewTTISimValidation(t *testing.T) {
	if _, err := NewTTISim(-0.1, nil); err == nil {
		t.Fatal("expected error for negative BLER")
	}
	if _, err := NewTTISim(1, nil); err == nil {
		t.Fatal("expected error for BLER 1")
	}
	if _, err := NewTTISim(0.1, nil); err == nil {
		t.Fatal("expected error for nil rng with BLER > 0")
	}
	if _, err := NewTTISim(0, nil); err != nil {
		t.Fatal("BLER 0 needs no rng")
	}
}

func TestSimulateTransfersValidation(t *testing.T) {
	sim, err := NewTTISim(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	users := []User{{SNRdB: 30}}
	if _, err := sim.SimulateTransfers(nil, Policies{Airtime: 1, MCSCap: 23}, 1e5); err == nil {
		t.Fatal("expected error for no users")
	}
	if _, err := sim.SimulateTransfers(users, Policies{Airtime: 0, MCSCap: 23}, 1e5); err == nil {
		t.Fatal("expected error for invalid policy")
	}
	if _, err := sim.SimulateTransfers(users, Policies{Airtime: 1, MCSCap: 23}, 0); err == nil {
		t.Fatal("expected error for zero payload")
	}
}

// The closed-form Allocation.TxDelay must be the time-average of the
// TTI-level process: across airtime/MCS/user-count combinations the two
// must agree within a few percent (granularity effects aside).
func TestTTISimMatchesAnalyticModel(t *testing.T) {
	sim, err := NewTTISim(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	const bits = 645e3
	for _, tc := range []struct {
		users   []User
		airtime float64
		mcsCap  int
	}{
		{[]User{{SNRdB: 35}}, 1, MaxMCS},
		{[]User{{SNRdB: 35}}, 0.4, MaxMCS},
		{[]User{{SNRdB: 35}}, 1, 8},
		{[]User{{SNRdB: 20}}, 0.7, 15},
		{[]User{{SNRdB: 35}, {SNRdB: 28}}, 1, MaxMCS},
		{[]User{{SNRdB: 35}, {SNRdB: 28}, {SNRdB: 22}}, 0.6, 18},
	} {
		p := Policies{Airtime: tc.airtime, MCSCap: tc.mcsCap}
		got, err := sim.SimulateTransfers(tc.users, p, bits)
		if err != nil {
			t.Fatal(err)
		}
		allocs, err := Schedule(tc.users, p)
		if err != nil {
			t.Fatal(err)
		}
		for i, a := range allocs {
			want := a.TxDelay(bits)
			if rel := math.Abs(got[i]-want) / want; rel > 0.08 {
				t.Errorf("case %+v user %d: TTI sim %.4fs vs analytic %.4fs (%.1f%% off)",
					tc, i, got[i], want, 100*rel)
			}
		}
	}
}

func TestTTISimHARQSlowsTransfers(t *testing.T) {
	ideal, err := NewTTISim(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := NewTTISim(0.1, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	users := []User{{SNRdB: 35}}
	p := Policies{Airtime: 1, MCSCap: MaxMCS}
	a, err := ideal.SimulateTransfers(users, p, 645e3)
	if err != nil {
		t.Fatal(err)
	}
	// Average several lossy runs.
	var sum float64
	const reps = 30
	for i := 0; i < reps; i++ {
		b, err := lossy.SimulateTransfers(users, p, 645e3)
		if err != nil {
			t.Fatal(err)
		}
		sum += b[0]
	}
	mean := sum / reps
	slowdown := mean / a[0]
	// 10% BLER with HARQ costs ≈1/(1-0.1) ≈ 11% extra airtime.
	if slowdown < 1.05 || slowdown > 1.25 {
		t.Fatalf("HARQ slowdown %.3f outside the ≈1.11 envelope", slowdown)
	}
}

func TestTTISimDutyCycle(t *testing.T) {
	// Halving the airtime must roughly double the single-user transfer time.
	sim, err := NewTTISim(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	users := []User{{SNRdB: 35}}
	full, err := sim.SimulateTransfers(users, Policies{Airtime: 1, MCSCap: MaxMCS}, 645e3)
	if err != nil {
		t.Fatal(err)
	}
	half, err := sim.SimulateTransfers(users, Policies{Airtime: 0.5, MCSCap: MaxMCS}, 645e3)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := half[0] / full[0]; ratio < 1.85 || ratio > 2.15 {
		t.Fatalf("duty-cycle scaling %.3f, want ≈2", ratio)
	}
}

func TestTTISimRoundRobinFair(t *testing.T) {
	// Equal-channel users must finish at nearly the same time.
	sim, err := NewTTISim(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	users := []User{{SNRdB: 35}, {SNRdB: 35}, {SNRdB: 35}}
	done, err := sim.SimulateTransfers(users, Policies{Airtime: 1, MCSCap: MaxMCS}, 3e5)
	if err != nil {
		t.Fatal(err)
	}
	min, max := done[0], done[0]
	for _, d := range done {
		min = math.Min(min, d)
		max = math.Max(max, d)
	}
	if (max-min)/max > 0.05 {
		t.Fatalf("round robin unfair: %v", done)
	}
}
