package ran

import (
	"fmt"
	"math/rand"
)

// SNRTrace generates the time-varying uplink SNR used in the dynamic-context
// experiments (§6.5, Fig. 13): the channel holds a level for a number of
// periods, then ramps linearly to a new random level, producing the
// step-and-ramp traces of the paper.
type SNRTrace struct {
	// MinDB and MaxDB bound the SNR excursion (the paper uses 5–38 dB).
	MinDB, MaxDB float64
	// HoldPeriods is how long the trace dwells at a level.
	HoldPeriods int
	// RampPeriods is how long a transition takes.
	RampPeriods int

	rng     *rand.Rand
	current float64
	target  float64
	phase   int // periods elapsed within the current hold+ramp cycle
}

// NewSNRTrace returns a trace starting at a random level within
// [minDB, maxDB]. rng is required.
func NewSNRTrace(minDB, maxDB float64, holdPeriods, rampPeriods int, rng *rand.Rand) (*SNRTrace, error) {
	if rng == nil {
		return nil, fmt.Errorf("ran: SNRTrace needs a rand source")
	}
	if maxDB <= minDB {
		return nil, fmt.Errorf("ran: SNR bounds [%v,%v] invalid", minDB, maxDB)
	}
	if holdPeriods < 1 || rampPeriods < 1 {
		return nil, fmt.Errorf("ran: hold (%d) and ramp (%d) periods must be at least 1", holdPeriods, rampPeriods)
	}
	t := &SNRTrace{
		MinDB: minDB, MaxDB: maxDB,
		HoldPeriods: holdPeriods, RampPeriods: rampPeriods,
		rng: rng,
	}
	t.current = minDB + rng.Float64()*(maxDB-minDB)
	t.target = t.current
	return t, nil
}

// Next advances the trace one control period and returns the SNR in dB.
func (t *SNRTrace) Next() float64 {
	cycle := t.HoldPeriods + t.RampPeriods
	pos := t.phase % cycle
	if pos == t.HoldPeriods {
		// Start of a ramp: pick the next level.
		t.target = t.MinDB + t.rng.Float64()*(t.MaxDB-t.MinDB)
	}
	if pos >= t.HoldPeriods {
		frac := float64(pos-t.HoldPeriods+1) / float64(t.RampPeriods)
		t.current = t.current + (t.target-t.current)*frac
	}
	t.phase++
	return t.current
}
