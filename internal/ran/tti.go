package ran

import (
	"fmt"
	"math/rand"
)

// TTISim runs the MAC scheduler at its native granularity: one transport
// block per granted 1 ms TTI, a token-bucket duty cycle enforcing the
// airtime policy, round-robin user selection, link adaptation capped by
// the MCS policy, and HARQ retransmissions at a configurable BLER target.
//
// The closed-form Allocation model used by the testbed is the time-average
// of this process; SimulateTransfers exists to validate that abstraction
// (see the package tests and the MAC-model ablation bench) and to study
// scheduler-level effects the averages hide.
type TTISim struct {
	// BLER is the block-error rate of first transmissions; failed blocks
	// are retransmitted (HARQ). The prototype's srsRAN link adaptation
	// targets ≈10 %.
	BLER float64
	// MaxTTIs bounds a simulation (guard against starvation).
	MaxTTIs int

	rng *rand.Rand
}

// NewTTISim returns a TTI-level simulator. rng is required when BLER > 0.
func NewTTISim(bler float64, rng *rand.Rand) (*TTISim, error) {
	if bler < 0 || bler >= 1 {
		return nil, fmt.Errorf("ran: BLER %v outside [0,1)", bler)
	}
	if bler > 0 && rng == nil {
		return nil, fmt.Errorf("ran: rand source required for nonzero BLER")
	}
	return &TTISim{BLER: bler, MaxTTIs: 10_000_000, rng: rng}, nil
}

// SimulateTransfers drains appBits of application-layer payload for every
// user under the radio policies and returns each user's completion time in
// seconds. Application bits convert to on-air bits through AppEfficiency,
// mirroring the prototype's protocol overhead.
func (s *TTISim) SimulateTransfers(users []User, p Policies, appBits float64) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(users) == 0 {
		return nil, fmt.Errorf("ran: no users")
	}
	if appBits <= 0 {
		return nil, fmt.Errorf("ran: non-positive payload %v", appBits)
	}
	onAirBits := appBits / AppEfficiency
	remaining := make([]float64, len(users))
	done := make([]float64, len(users))
	mcs := make([]int, len(users))
	for i, u := range users {
		remaining[i] = onAirBits
		mcs[i] = EffectiveMCS(u.CQI(), p.MCSCap)
	}
	pending := len(users)
	credit := 0.0
	rr := 0
	for tti := 0; pending > 0; tti++ {
		if tti >= s.MaxTTIs {
			return nil, fmt.Errorf("ran: transfer exceeded %d TTIs", s.MaxTTIs)
		}
		// Token-bucket duty cycle: the slice may transmit only while it
		// holds at least one TTI of credit.
		credit += p.Airtime
		if credit < 1 {
			continue
		}
		credit--
		// Round-robin over users that still have data.
		for probe := 0; probe < len(users); probe++ {
			i := (rr + probe) % len(users)
			if remaining[i] <= 0 {
				continue
			}
			rr = i + 1
			if s.BLER > 0 && s.rng.Float64() < s.BLER {
				break // HARQ: block lost, TTI spent
			}
			remaining[i] -= TBSPerPRB(mcs[i]) * NumPRB
			if remaining[i] <= 0 {
				done[i] = float64(tti+1) / 1000.0
				pending--
			}
			break
		}
	}
	return done, nil
}
