package ran

import "math"

// Baseband power-model constants, calibrated to the prototype's GW-Instek
// measurements: the vBS draws between ≈4 and ≈8 W across all policies
// (§6.2–6.3), sits near 4.75–5.75 W at the nominal service load (Fig. 5),
// and reaches 5–7 W at 10× load (Fig. 6).
const (
	// bsIdlePower is the baseband draw with no traffic.
	bsIdlePower = 4.6 // W
	// bsPRBPower scales with the fraction of PRBs occupied (front-end,
	// FFT/demodulation work that is paid per scheduled resource).
	bsPRBPower = 1.6 // W at full occupancy
	// bsDecodePowerPerMbps scales with the bits actually decoded.
	bsDecodePowerPerMbps = 0.015 // W per Mb/s
	// bsDecodeMCSSlope captures the extra per-bit decoding effort at higher
	// code rates (more turbo iterations near the efficiency edge).
	bsDecodeMCSSlope = 0.015 // per MCS index
)

// PHYRateInterp linearly interpolates PHYRate for fractional MCS values,
// used when reporting against a mean MCS across users.
func PHYRateInterp(mcs float64) float64 {
	if mcs <= 0 {
		return PHYRate(0)
	}
	if mcs >= MaxMCS {
		return PHYRate(MaxMCS)
	}
	lo := math.Floor(mcs)
	frac := mcs - lo
	return (1-frac)*PHYRate(int(lo)) + frac*PHYRate(int(lo)+1)
}

// BSPower returns the baseband power draw in watts (Performance Indicator
// 4) for an offered on-air load in bit/s carried at the given mean MCS
// under the airtime policy.
//
// The model has an idle floor plus two dynamic terms: per-PRB front-end
// work (proportional to PRB occupancy, which *falls* as MCS rises for a
// fixed load — the Fig. 5 effect) and per-bit decoding work (proportional
// to the bits actually served, which *rises* with MCS once the airtime
// budget saturates — the Fig. 6 effect).
func BSPower(offeredOnAir, meanMCS float64, p Policies) float64 {
	rate := PHYRateInterp(meanMCS)
	if offeredOnAir < 0 {
		offeredOnAir = 0
	}
	prbFrac := offeredOnAir / rate
	if prbFrac > p.Airtime {
		prbFrac = p.Airtime
	}
	served := math.Min(offeredOnAir, p.Airtime*rate)
	decode := bsDecodePowerPerMbps * served / 1e6 * (1 + bsDecodeMCSSlope*meanMCS)
	return bsIdlePower + bsPRBPower*prbFrac + decode
}

// BSPowerRange returns the approximate [min, max] envelope of the model,
// used for normalizing costs and sanity checks.
func BSPowerRange() (min, max float64) {
	return bsIdlePower, BSPower(math.Inf(1), MaxMCS, Policies{Airtime: 1, MCSCap: MaxMCS})
}
