package ran

import (
	"fmt"
	"math"
)

// AppEfficiency is the ratio of application-layer goodput to PHY rate
// observed on the prototype's single-UE pipeline (Python/OpenCV client, HTTP
// over LTE, srsRAN protocol stack). The paper reports ≈2.8 Mb/s of service
// traffic against a ≈50 Mb/s carrier and per-image service delays in the
// 0.2–0.7 s range (Figs. 1–3), implying a single-digit-percent end-to-end
// efficiency; 8 % also leaves the optimal operating points of §6.2 the
// ≈0.1 s delay slack visible in Fig. 9.
const AppEfficiency = 0.08

// User describes one UE attached to the service slice.
type User struct {
	// SNRdB is the mean uplink signal-to-noise ratio of the user.
	SNRdB float64
}

// CQI returns the user's channel quality indicator report.
func (u User) CQI() int { return CQIFromSNR(u.SNRdB) }

// Policies are the two radio control policies of §3 applied to the slice.
type Policies struct {
	// Airtime is the duty-cycle cap in (0, 1] (Policy 2).
	Airtime float64
	// MCSCap is the maximum eligible MCS index (Policy 4).
	MCSCap int
}

// Validate reports whether the policies are within their domains.
func (p Policies) Validate() error {
	if p.Airtime <= 0 || p.Airtime > 1 || math.IsNaN(p.Airtime) {
		return fmt.Errorf("ran: airtime %v outside (0,1]", p.Airtime)
	}
	if p.MCSCap < 0 || p.MCSCap > MaxMCS {
		return fmt.Errorf("ran: MCS cap %d outside [0,%d]", p.MCSCap, MaxMCS)
	}
	return nil
}

// Allocation is the outcome of the round-robin MAC scheduler for one user.
type Allocation struct {
	// Share is the fraction of total airtime granted to the user.
	Share float64
	// MCS is the effective MCS after link adaptation and the policy cap.
	MCS int
	// PHYRate is the user's physical-layer rate in bit/s (share applied).
	PHYRate float64
	// AppRate is the user's application-layer goodput in bit/s.
	AppRate float64
}

// Schedule runs the round-robin scheduler of §6.4: the airtime budget is
// split equally across users, and each user's MCS is the legacy srsRAN
// link-adaptation choice upper-bounded by the policy.
func Schedule(users []User, p Policies) ([]Allocation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(users) == 0 {
		return nil, fmt.Errorf("ran: no users to schedule")
	}
	share := p.Airtime / float64(len(users))
	allocs := make([]Allocation, len(users))
	for i, u := range users {
		m := EffectiveMCS(u.CQI(), p.MCSCap)
		phy := share * PHYRate(m)
		allocs[i] = Allocation{
			Share:   share,
			MCS:     m,
			PHYRate: phy,
			AppRate: AppEfficiency * phy,
		}
	}
	return allocs, nil
}

// TxDelay returns the uplink transmission delay in seconds for an object of
// the given size in bits at the allocation's application-layer rate.
func (a Allocation) TxDelay(bits float64) float64 {
	if a.AppRate <= 0 {
		return math.Inf(1)
	}
	return bits / a.AppRate
}
