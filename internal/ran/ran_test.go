package ran

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTBSMonotone(t *testing.T) {
	for m := 1; m <= MaxMCS; m++ {
		if TBSPerPRB(m) <= TBSPerPRB(m-1) {
			t.Fatalf("TBS not monotone at MCS %d", m)
		}
	}
}

func TestTBSClamps(t *testing.T) {
	if TBSPerPRB(-3) != TBSPerPRB(0) || TBSPerPRB(99) != TBSPerPRB(MaxMCS) {
		t.Fatal("TBSPerPRB must clamp out-of-range MCS")
	}
}

func TestPHYRateCapacity(t *testing.T) {
	// §3 quotes ≈50 Mb/s for SISO LTE @ 20 MHz.
	top := PHYRate(MaxMCS)
	if top < 45e6 || top > 60e6 {
		t.Fatalf("top PHY rate %v outside the ≈50 Mb/s envelope", top)
	}
}

func TestCQIFromSNR(t *testing.T) {
	if CQIFromSNR(35) != MaxCQI {
		t.Fatalf("35 dB should map to CQI %d, got %d", MaxCQI, CQIFromSNR(35))
	}
	if CQIFromSNR(-20) != 1 {
		t.Fatalf("very low SNR should map to CQI 1, got %d", CQIFromSNR(-20))
	}
	prev := 0
	for snr := -10.0; snr <= 40; snr += 0.5 {
		c := CQIFromSNR(snr)
		if c < prev {
			t.Fatalf("CQI not monotone in SNR at %v dB", snr)
		}
		prev = c
	}
}

func TestMCSFromCQIMonotone(t *testing.T) {
	prev := -1
	for c := 1; c <= MaxCQI; c++ {
		m := MCSFromCQI(c)
		if m < prev || m > MaxMCS {
			t.Fatalf("MCSFromCQI(%d) = %d not monotone or out of range", c, m)
		}
		prev = m
	}
	if MCSFromCQI(MaxCQI) != MaxMCS {
		t.Fatal("best CQI should enable the top MCS")
	}
}

func TestEffectiveMCSCaps(t *testing.T) {
	if EffectiveMCS(15, 5) != 5 {
		t.Fatal("policy cap must bound the MCS")
	}
	if EffectiveMCS(3, 23) != MCSFromCQI(3) {
		t.Fatal("link adaptation must bound the MCS when below the cap")
	}
	if EffectiveMCS(15, 99) != MaxMCS {
		t.Fatal("cap above MaxMCS must clamp")
	}
}

func TestPoliciesValidate(t *testing.T) {
	good := Policies{Airtime: 0.5, MCSCap: 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Policies{
		{Airtime: 0, MCSCap: 10},
		{Airtime: 1.2, MCSCap: 10},
		{Airtime: math.NaN(), MCSCap: 10},
		{Airtime: 0.5, MCSCap: -1},
		{Airtime: 0.5, MCSCap: MaxMCS + 1},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("expected validation error for %+v", bad)
		}
	}
}

func TestScheduleEqualShares(t *testing.T) {
	users := []User{{SNRdB: 30}, {SNRdB: 20}, {SNRdB: 10}}
	allocs, err := Schedule(users, Policies{Airtime: 0.9, MCSCap: MaxMCS})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range allocs {
		if math.Abs(a.Share-0.3) > 1e-12 {
			t.Fatalf("share %v, want 0.3", a.Share)
		}
	}
	// Worse channel => lower effective MCS => lower rate.
	if !(allocs[0].PHYRate > allocs[1].PHYRate && allocs[1].PHYRate > allocs[2].PHYRate) {
		t.Fatalf("rates should fall with SNR: %+v", allocs)
	}
}

func TestScheduleErrors(t *testing.T) {
	if _, err := Schedule(nil, Policies{Airtime: 1, MCSCap: 1}); err == nil {
		t.Fatal("expected error for no users")
	}
	if _, err := Schedule([]User{{SNRdB: 30}}, Policies{Airtime: 0, MCSCap: 1}); err == nil {
		t.Fatal("expected error for invalid policy")
	}
}

func TestTxDelayScalesWithBits(t *testing.T) {
	allocs, err := Schedule([]User{{SNRdB: 35}}, Policies{Airtime: 1, MCSCap: MaxMCS})
	if err != nil {
		t.Fatal(err)
	}
	d1 := allocs[0].TxDelay(1e5)
	d2 := allocs[0].TxDelay(2e5)
	if math.Abs(d2-2*d1) > 1e-12 {
		t.Fatalf("TxDelay not linear in bits: %v vs %v", d1, d2)
	}
}

func TestTxDelayCalibration(t *testing.T) {
	// A full-resolution image (≈645 kbit) at full airtime and top MCS should
	// take a few hundred ms, as in Fig. 1's high-resolution operating point.
	allocs, err := Schedule([]User{{SNRdB: 35}}, Policies{Airtime: 1, MCSCap: MaxMCS})
	if err != nil {
		t.Fatal(err)
	}
	d := allocs[0].TxDelay(645e3)
	if d < 0.15 || d > 0.45 {
		t.Fatalf("full-res tx delay %v s outside the prototype's 0.15–0.45 s envelope", d)
	}
}

func TestBSPowerEnvelope(t *testing.T) {
	min, max := BSPowerRange()
	if min < 4 || max > 8.5 {
		t.Fatalf("BS power envelope [%v, %v] outside the paper's 4–8 W", min, max)
	}
	if max <= min {
		t.Fatal("degenerate envelope")
	}
}

// Fig. 5 effect: at low load, a higher MCS lowers BS power.
func TestBSPowerFallsWithMCSAtLowLoad(t *testing.T) {
	p := Policies{Airtime: 1, MCSCap: MaxMCS}
	low := BSPower(20e6, 5, p)
	high := BSPower(20e6, 20, p)
	if high >= low {
		t.Fatalf("at low load, MCS 20 power %v should be below MCS 5 power %v", high, low)
	}
}

// Fig. 6 effect: once the airtime budget saturates, a higher MCS serves more
// bits and raises BS power.
func TestBSPowerRisesWithMCSWhenSaturated(t *testing.T) {
	p := Policies{Airtime: 0.5, MCSCap: MaxMCS}
	low := BSPower(200e6, 5, p)
	high := BSPower(200e6, 20, p)
	if high <= low {
		t.Fatalf("under saturation, MCS 20 power %v should exceed MCS 5 power %v", high, low)
	}
}

func TestBSPowerMonotoneInLoad(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Policies{Airtime: 0.1 + 0.9*rng.Float64(), MCSCap: MaxMCS}
		mcs := rng.Float64() * MaxMCS
		l1 := rng.Float64() * 100e6
		l2 := l1 + rng.Float64()*100e6
		return BSPower(l2, mcs, p) >= BSPower(l1, mcs, p)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBSPowerMoreAirtimeMorePower(t *testing.T) {
	// With abundant offered load, granting more airtime must not reduce power.
	lo := BSPower(100e6, 12, Policies{Airtime: 0.2, MCSCap: MaxMCS})
	hi := BSPower(100e6, 12, Policies{Airtime: 1.0, MCSCap: MaxMCS})
	if hi <= lo {
		t.Fatalf("more airtime should draw more power under load: %v vs %v", hi, lo)
	}
}

func TestBSPowerNegativeLoadClamped(t *testing.T) {
	p := Policies{Airtime: 1, MCSCap: MaxMCS}
	if got := BSPower(-5, 10, p); got != bsIdlePower {
		t.Fatalf("negative load should clamp to idle power, got %v", got)
	}
}

func TestPHYRateInterp(t *testing.T) {
	if PHYRateInterp(-1) != PHYRate(0) || PHYRateInterp(99) != PHYRate(MaxMCS) {
		t.Fatal("interp must clamp")
	}
	mid := PHYRateInterp(3.5)
	if mid <= PHYRate(3) || mid >= PHYRate(4) {
		t.Fatalf("interp at 3.5 = %v outside (%v, %v)", mid, PHYRate(3), PHYRate(4))
	}
}

func TestSNRTraceBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr, err := NewSNRTrace(5, 38, 10, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	varied := false
	first := tr.Next()
	for i := 0; i < 300; i++ {
		v := tr.Next()
		if v < 5-1e-9 || v > 38+1e-9 {
			t.Fatalf("trace escaped bounds: %v", v)
		}
		if math.Abs(v-first) > 1 {
			varied = true
		}
	}
	if !varied {
		t.Fatal("trace never moved")
	}
}

func TestSNRTraceValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewSNRTrace(5, 38, 10, 4, nil); err == nil {
		t.Fatal("expected error for nil rng")
	}
	if _, err := NewSNRTrace(38, 5, 10, 4, rng); err == nil {
		t.Fatal("expected error for inverted bounds")
	}
	if _, err := NewSNRTrace(5, 38, 0, 4, rng); err == nil {
		t.Fatal("expected error for zero hold")
	}
	if _, err := NewSNRTrace(5, 38, 10, 0, rng); err == nil {
		t.Fatal("expected error for zero ramp")
	}
}

func TestSNRTraceDeterministic(t *testing.T) {
	mk := func() []float64 {
		tr, err := NewSNRTrace(5, 38, 8, 3, rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 50)
		for i := range out {
			out[i] = tr.Next()
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace not deterministic at %d", i)
		}
	}
}
