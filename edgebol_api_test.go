package edgebol

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/oran"
)

// These tests exercise the repository's public facade the way an external
// adopter would: build the testbed, run the agent, consult the oracle, and
// drive the loop over the O-RAN control plane.

func TestFacadeQuickstartFlow(t *testing.T) {
	tb, err := NewTestbed(DefaultTestbedConfig(), []User{{SNRdB: 35}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewAgent(Options{
		Grid:        GridSpec{Levels: 5, MinResolution: 0.1, MinAirtime: 0.1},
		Weights:     CostWeights{Delta1: 1, Delta2: 1},
		Constraints: Constraints{MaxDelay: 0.4, MinMAP: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	var k KPIs
	for i := 0; i < 25; i++ {
		_, k, _, err = agent.Step(tb)
		if err != nil {
			t.Fatal(err)
		}
	}
	if k.Delay <= 0 || k.ServerPower <= 0 {
		t.Fatalf("degenerate KPIs %+v", k)
	}
	if agent.Observations() != 25 {
		t.Fatalf("agent saw %d observations", agent.Observations())
	}
}

func TestFacadeDefaults(t *testing.T) {
	if DefaultGridSpec().Size() != 14641 {
		t.Fatal("default grid must match the paper's 11^4 control space")
	}
	n := DefaultNormalization(CostWeights{Delta1: 1, Delta2: 1})
	if n.Cost.Scale <= 0 {
		t.Fatal("default normalization broken")
	}
	if len(HeterogeneousUsers(4)) != 4 {
		t.Fatal("HeterogeneousUsers wrong length")
	}
	if QuickScale().GridLevels >= PaperScale().GridLevels {
		t.Fatal("quick scale should be coarser than paper scale")
	}
}

func TestFacadeOracle(t *testing.T) {
	tb, err := NewTestbed(DefaultTestbedConfig(), []User{{SNRdB: 35}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	grid := GridSpec{Levels: 5, MinResolution: 0.1, MinAirtime: 0.1}
	x, cost, err := Oracle(tb.Expected, grid, CostWeights{Delta1: 1, Delta2: 1},
		Constraints{MaxDelay: 0.4, MinMAP: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatalf("oracle cost %v", cost)
	}
}

func TestFacadeDDPG(t *testing.T) {
	d, err := NewDDPG(DDPGOptions{
		Grid:        GridSpec{Levels: 4, MinResolution: 0.1, MinAirtime: 0.1},
		Weights:     CostWeights{Delta1: 1, Delta2: 1},
		Constraints: Constraints{MaxDelay: 0.5, MinMAP: 0.4},
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	x := d.Select(Context{NumUsers: 1, MeanCQI: 15})
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	var _ BenchmarkPolicy = d
}

func TestFacadeORANDeployment(t *testing.T) {
	tb, err := NewTestbed(DefaultTestbedConfig(), []User{{SNRdB: 35}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	var dep *Deployment
	dep, err = Deploy(context.Background(), tb, DeployOptions{Timeout: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	var env Environment = dep.Env()
	k, err := env.Measure(Control{Resolution: 0.8, Airtime: 1, GPUSpeed: 0.8, MCS: 1})
	if err != nil {
		t.Fatal(err)
	}
	if k.BSPower <= 0 {
		t.Fatal("no KPI over the control plane")
	}
	// KPI subscriptions are reachable through the deployment too.
	ch, cancel := dep.DataPlane.Subscribe()
	defer cancel()
	if _, err := env.Measure(Control{Resolution: 0.8, Airtime: 1, GPUSpeed: 0.8, MCS: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-ch:
		var _ oran.KPIReport = r
	case <-time.After(2 * time.Second):
		t.Fatal("no KPI indication")
	}
}

// TestFacadeCheckpointRoundTrip exercises the warm-restart surface the way
// an adopter would: run, snapshot, kill, resume, and verify the resumed
// agent picks up bitwise where the interrupted one stopped.
func TestFacadeCheckpointRoundTrip(t *testing.T) {
	opts := Options{
		Grid:        GridSpec{Levels: 4, MinResolution: 0.1, MinAirtime: 0.1},
		Weights:     CostWeights{Delta1: 1, Delta2: 1},
		Constraints: Constraints{MaxDelay: 0.4, MinMAP: 0.5},
	}
	tb, err := NewTestbed(DefaultTestbedConfig(), []User{{SNRdB: 35}}, 9)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewAgent(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, _, _, err := agent.Step(tb); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := SaveCheckpoint(agent, &buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	info, err := ReadCheckpointInfo(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if info.Periods != 10 || len(info.Objectives) == 0 {
		t.Fatalf("checkpoint info %+v", info)
	}

	restored, err := LoadCheckpoint(bytes.NewReader(raw), opts)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Observations() != 10 {
		t.Fatalf("restored at %d observations", restored.Observations())
	}
	ctx := tb.Context()
	x1, _ := agent.SelectControl(ctx)
	x2, _ := restored.SelectControl(ctx)
	if x1 != x2 {
		t.Fatalf("restored selection %+v != live %+v", x2, x1)
	}

	// Mismatched fixed configuration must be rejected with the sentinel.
	bad := opts
	bad.Grid.Levels = 5
	if _, err := LoadCheckpoint(bytes.NewReader(raw), bad); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("mismatched load err = %v, want ErrCheckpointMismatch", err)
	}

	// The typed reconfiguration error is part of the facade too.
	var re *ErrInvalidReconfig
	if err := restored.SetConstraints(Constraints{MaxDelay: -1, MinMAP: 0.5}); !errors.As(err, &re) {
		t.Fatalf("SetConstraints err = %v, want *ErrInvalidReconfig", err)
	}
}

// TestFacadeFleet drives the fleet orchestration surface end to end the
// way an adopter would: validate options, deploy a small fleet, step it,
// admit a warm-started joiner, and read the roll-up summary.
func TestFacadeFleet(t *testing.T) {
	slice := SliceConfig{
		Name:          "svc",
		AirtimeBudget: 0.9,
		GPUShare:      0.9,
		Users:         []User{{SNRdB: 35}},
		Weights:       CostWeights{Delta1: 1, Delta2: 1},
		Constraints:   Constraints{MaxDelay: 0.4, MinMAP: 0.5},
	}
	opts := FleetOptions{
		Cells:     FleetCells(2, slice),
		Agent:     Options{Grid: GridSpec{Levels: 3, MinResolution: 0.1, MinAirtime: 0.1}},
		BaseSeed:  3,
		WarmStart: WarmStartPolicy{Neighbors: 2},
	}
	// Typed validation errors surface through the facade.
	bad := opts
	bad.Workers = -1
	var oe *FleetOptionError
	if err := bad.Validate(); !errors.As(err, &oe) || oe.Field != "Workers" {
		t.Fatalf("want *FleetOptionError naming Workers, got %v", err)
	}
	f, err := NewFleet(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	for p := 0; p < 4; p++ {
		res, err := f.Step()
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 2 {
			t.Fatalf("period returned %d cell results", len(res))
		}
	}
	joiner := slice
	joiner.Name = "joiner"
	cell, seeded, err := f.AddCell(context.Background(), FleetCellConfig{Name: "joiner", Slice: joiner})
	if err != nil {
		t.Fatal(err)
	}
	if seeded == 0 {
		t.Fatal("joiner was not warm-started")
	}
	if cell.Agent.Observations() != seeded {
		t.Fatalf("joiner observations %d != seeded %d", cell.Agent.Observations(), seeded)
	}
	sum := f.Summary()
	if sum.Cells != 3 || sum.Periods != 4 || sum.TotalCost <= 0 {
		t.Fatalf("summary %+v", sum)
	}
}

// TestFacadeWarmStartEquivalence pins the facade-level warm-start
// contract: WarmStart-seeded agents select bitwise identically to agents
// that observed the pooled history directly.
func TestFacadeWarmStartEquivalence(t *testing.T) {
	tb, err := NewTestbed(DefaultTestbedConfig(), []User{{SNRdB: 35}}, 21)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Grid:        GridSpec{Levels: 4, MinResolution: 0.1, MinAirtime: 0.1},
		Weights:     CostWeights{Delta1: 1, Delta2: 1},
		Constraints: Constraints{MaxDelay: 0.4, MinMAP: 0.5},
	}
	donor, err := NewAgent(opts)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 15; p++ {
		if _, _, _, err := donor.Step(tb); err != nil {
			t.Fatal(err)
		}
	}
	pool := donor.History(0)
	warm, err := NewAgent(opts)
	if err != nil {
		t.Fatal(err)
	}
	n, err := WarmStart(warm, tb.Context(), []WarmStartDonor{{Context: tb.Context(), History: pool}},
		WarmStartPolicy{Neighbors: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(pool) {
		t.Fatalf("seeded %d of %d pooled samples", n, len(pool))
	}
	direct, err := NewAgent(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := direct.SeedHistory(pool); err != nil {
		t.Fatal(err)
	}
	xw, _ := warm.SelectControl(tb.Context())
	xd, _ := direct.SelectControl(tb.Context())
	if xw != xd {
		t.Fatalf("warm-started selection %+v != directly seeded %+v", xw, xd)
	}
	var bw, bd bytes.Buffer
	if err := SaveCheckpoint(warm, &bw); err != nil {
		t.Fatal(err)
	}
	if err := SaveCheckpoint(direct, &bd); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bw.Bytes(), bd.Bytes()) {
		t.Fatal("warm-start checkpoint bytes diverge")
	}
}
