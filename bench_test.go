// Benchmarks regenerating every figure of the paper's evaluation plus the
// ablation studies called out in DESIGN.md. Each BenchmarkFigN measures one
// regeneration of the corresponding figure's data at reduced benchmark
// scale; cmd/figures produces the full tables (use -scale paper for the
// paper's exact settings).
//
// Ablation benches additionally report domain metrics (optimality gap,
// violation rate) via b.ReportMetric, so `go test -bench .` doubles as the
// design-choice evaluation harness.
package edgebol

import (
	"math"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/bandit"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/gp"
	"repro/internal/linalg"
	"repro/internal/ran"
	"repro/internal/testbed"
)

// benchScale keeps the per-iteration cost of figure benches manageable.
func benchScale() experiment.Scale {
	return experiment.Scale{
		GridLevels:      5,
		Periods:         40,
		Reps:            1,
		SweepLevels:     4,
		DynamicPeriods:  30,
		PhasePeriods:    25,
		Delta2s:         []float64{1, 8},
		TailWindow:      12,
		MaxObservations: 150,
	}
}

func benchTable(b *testing.B, fn func(experiment.Scale, int64) (*experiment.Table, error)) {
	b.Helper()
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		t, err := fn(scale, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig1(b *testing.B) { benchTable(b, experiment.Fig1) }
func BenchmarkFig2(b *testing.B) { benchTable(b, experiment.Fig2) }
func BenchmarkFig3(b *testing.B) { benchTable(b, experiment.Fig3) }
func BenchmarkFig4(b *testing.B) { benchTable(b, experiment.Fig4) }
func BenchmarkFig5(b *testing.B) { benchTable(b, experiment.Fig5) }
func BenchmarkFig6(b *testing.B) { benchTable(b, experiment.Fig6) }
func BenchmarkFig9(b *testing.B) { benchTable(b, experiment.Fig9) }

func BenchmarkFig10And11(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		f10, f11, err := experiment.Fig10And11(scale, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		if len(f10.Rows) == 0 || len(f11.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig12(b *testing.B) { benchTable(b, experiment.Fig12) }
func BenchmarkFig13(b *testing.B) { benchTable(b, experiment.Fig13) }
func BenchmarkFig14(b *testing.B) { benchTable(b, experiment.Fig14) }

// --- Ablations -----------------------------------------------------------

// runAblationAgent drives an agent on the standard single-user scenario
// and returns (median tail cost, violation count after burn-in).
func runAblationAgent(b *testing.B, opts core.Options, periods int, seed int64) (float64, int) {
	b.Helper()
	tb, err := testbed.New(testbed.DefaultConfig(), []ran.User{{SNRdB: 35}}, seed)
	if err != nil {
		b.Fatal(err)
	}
	agent, err := core.NewAgent(opts)
	if err != nil {
		b.Fatal(err)
	}
	cons := opts.Constraints
	var tail []float64
	violations := 0
	for t := 0; t < periods; t++ {
		_, k, _, err := agent.Step(tb)
		if err != nil {
			b.Fatal(err)
		}
		if t >= periods/3 && !cons.Satisfied(k) {
			violations++
		}
		if t >= periods-15 {
			tail = append(tail, opts.Weights.Cost(k))
		}
	}
	return experiment.Median(tail), violations
}

func ablationOptions() core.Options {
	return core.Options{
		Grid:        core.GridSpec{Levels: 5, MinResolution: 0.1, MinAirtime: 0.1},
		Weights:     core.CostWeights{Delta1: 1, Delta2: 1},
		Constraints: core.Constraints{MaxDelay: 0.4, MinMAP: 0.5},
	}
}

// BenchmarkAblationSafeSet compares EdgeBOL with and without the eq. 8
// safety filter: the unconstrained LCB explores violating configurations.
func BenchmarkAblationSafeSet(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"safe", false}, {"unconstrained", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var cost float64
			var violations int
			for i := 0; i < b.N; i++ {
				opts := ablationOptions()
				opts.DisableSafeSet = mode.disable
				c, v := runAblationAgent(b, opts, 60, int64(i)+1)
				cost += c
				violations += v
			}
			b.ReportMetric(cost/float64(b.N), "tail-cost")
			b.ReportMetric(float64(violations)/float64(b.N), "violations")
		})
	}
}

// BenchmarkAblationKernel compares the paper's Matérn-3/2 against
// Matérn-5/2 and RBF.
func BenchmarkAblationKernel(b *testing.B) {
	factories := []struct {
		name string
		f    gp.KernelFactory
	}{
		{"matern32", gp.Matern32Factory},
		{"matern52", gp.Matern52Factory},
		{"rbf", gp.RBFFactory},
	}
	for _, k := range factories {
		b.Run(k.name, func(b *testing.B) {
			var cost float64
			var violations int
			for i := 0; i < b.N; i++ {
				opts := ablationOptions()
				opts.KernelFactory = k.f
				c, v := runAblationAgent(b, opts, 60, int64(i)+1)
				cost += c
				violations += v
			}
			b.ReportMetric(cost/float64(b.N), "tail-cost")
			b.ReportMetric(float64(violations)/float64(b.N), "violations")
		})
	}
}

// BenchmarkAblationBeta sweeps the exploration parameter around the
// paper's β^½ = 2.5.
func BenchmarkAblationBeta(b *testing.B) {
	for _, beta := range []float64{1.5, 2.5, 4.0} {
		b.Run(formatFloat(beta), func(b *testing.B) {
			var cost float64
			var violations int
			for i := 0; i < b.N; i++ {
				opts := ablationOptions()
				opts.SafeBeta = beta
				opts.AcqBeta = beta
				c, v := runAblationAgent(b, opts, 60, int64(i)+1)
				cost += c
				violations += v
			}
			b.ReportMetric(cost/float64(b.N), "tail-cost")
			b.ReportMetric(float64(violations)/float64(b.N), "violations")
		})
	}
}

// BenchmarkAblationWindow compares unbounded GP history against the
// sliding-window budget used for long runs.
func BenchmarkAblationWindow(b *testing.B) {
	for _, window := range []int{0, 60, 150} {
		b.Run(formatInt(window), func(b *testing.B) {
			var cost float64
			for i := 0; i < b.N; i++ {
				opts := ablationOptions()
				opts.MaxObservations = window
				c, _ := runAblationAgent(b, opts, 80, int64(i)+1)
				cost += c
			}
			b.ReportMetric(cost/float64(b.N), "tail-cost")
		})
	}
}

// BenchmarkAblationContext measures the value of the context features on
// the dynamic-channel scenario: a context-blind agent cannot transfer
// knowledge across channel states.
func BenchmarkAblationContext(b *testing.B) {
	run := func(b *testing.B, blind bool, seed int64) (float64, int) {
		tb, err := testbed.New(testbed.DefaultConfig(), []ran.User{{SNRdB: 35}}, seed)
		if err != nil {
			b.Fatal(err)
		}
		trace, err := ran.NewSNRTrace(5, 38, 12, 5, rand.New(rand.NewSource(seed+1)))
		if err != nil {
			b.Fatal(err)
		}
		opts := ablationOptions()
		agent, err := core.NewAgent(opts)
		if err != nil {
			b.Fatal(err)
		}
		var cost float64
		violations := 0
		const periods = 60
		for t := 0; t < periods; t++ {
			tb.SetSNR(trace.Next())
			ctx := tb.Context()
			if blind {
				ctx = core.Context{NumUsers: 1, MeanCQI: 15} // frozen context
			}
			x, _ := agent.SelectControl(ctx)
			k, err := tb.Measure(x)
			if err != nil {
				b.Fatal(err)
			}
			if err := agent.Observe(ctx, x, k); err != nil {
				b.Fatal(err)
			}
			if t > periods/3 {
				cost += opts.Weights.Cost(k)
				if !opts.Constraints.Satisfied(k) {
					violations++
				}
			}
		}
		return cost / float64(periods-periods/3-1), violations
	}
	for _, mode := range []struct {
		name  string
		blind bool
	}{{"contextual", false}, {"context-blind", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var cost float64
			var violations int
			for i := 0; i < b.N; i++ {
				c, v := run(b, mode.blind, int64(i)+1)
				cost += c
				violations += v
			}
			b.ReportMetric(cost/float64(b.N), "mean-cost")
			b.ReportMetric(float64(violations)/float64(b.N), "violations")
		})
	}
}

// BenchmarkAblationAcquisition compares the paper's constrained LCB
// (eq. 9) against the SafeOpt-style uncertainty acquisition the authors
// rejected for its slow convergence.
func BenchmarkAblationAcquisition(b *testing.B) {
	for _, acq := range []struct {
		name string
		kind core.AcquisitionRule
	}{{"lcb", core.AcquisitionLCB}, {"safeopt", core.AcquisitionSafeOpt}} {
		b.Run(acq.name, func(b *testing.B) {
			var cost float64
			var violations int
			for i := 0; i < b.N; i++ {
				opts := ablationOptions()
				opts.Rule = acq.kind
				c, v := runAblationAgent(b, opts, 60, int64(i)+1)
				cost += c
				violations += v
			}
			b.ReportMetric(cost/float64(b.N), "tail-cost")
			b.ReportMetric(float64(violations)/float64(b.N), "violations")
		})
	}
}

// BenchmarkAblationCholesky compares the incremental rank-append update
// against full refactorization for the per-period GP update.
func BenchmarkAblationCholesky(b *testing.B) {
	const n = 150
	rng := rand.New(rand.NewSource(1))
	kern := gp.NewMatern32([]float64{0.5, 0.5, 0.5, 0.5})
	xs := make([][]float64, n)
	for i := range xs {
		xs[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
	}
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := gp.New(kern, 1e-3, 0)
			for j, x := range xs {
				if err := g.Add(x, float64(j)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("refactorize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Rebuild the full kernel matrix and factorize from scratch at
			// every step, the O(t³)-per-period alternative.
			for t := 1; t <= n; t++ {
				k := linalg.NewMatrix(t, t)
				for r := 0; r < t; r++ {
					for c := 0; c <= r; c++ {
						v := kern.Eval(xs[r], xs[c])
						if r == c {
							v += 1e-3
						}
						k.Set(r, c, v)
						k.Set(c, r, v)
					}
				}
				if _, err := linalg.NewCholesky(k); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAblationMACModel compares the closed-form scheduler abstraction
// used by the testbed against the TTI-level MAC simulation, reporting both
// the runtime gap and the modeling error.
func BenchmarkAblationMACModel(b *testing.B) {
	users := []ran.User{{SNRdB: 35}, {SNRdB: 28}}
	pol := ran.Policies{Airtime: 0.7, MCSCap: 18}
	const bits = 645e3
	b.Run("analytic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			allocs, err := ran.Schedule(users, pol)
			if err != nil {
				b.Fatal(err)
			}
			_ = allocs[0].TxDelay(bits)
		}
	})
	b.Run("tti-sim", func(b *testing.B) {
		sim, err := ran.NewTTISim(0, nil)
		if err != nil {
			b.Fatal(err)
		}
		var maxErr float64
		for i := 0; i < b.N; i++ {
			got, err := sim.SimulateTransfers(users, pol, bits)
			if err != nil {
				b.Fatal(err)
			}
			allocs, err := ran.Schedule(users, pol)
			if err != nil {
				b.Fatal(err)
			}
			for u := range users {
				want := allocs[u].TxDelay(bits)
				if e := math.Abs(got[u]-want) / want; e > maxErr {
					maxErr = e
				}
			}
		}
		b.ReportMetric(maxErr*100, "model-error-%")
	})
}

// BenchmarkAblationDDPGVsEdgeBOL is the quantitative core of Fig. 14: the
// cumulative constraint-violation magnitude of both algorithms over a run
// with a constraint change in the middle.
func BenchmarkAblationDDPGVsEdgeBOL(b *testing.B) {
	grid := core.GridSpec{Levels: 5, MinResolution: 0.1, MinAirtime: 0.1}
	w := core.CostWeights{Delta1: 1, Delta2: 8}
	phase1 := core.Constraints{MaxDelay: 0.5, MinMAP: 0.4}
	phase2 := core.Constraints{MaxDelay: 0.4, MinMAP: 0.6}
	const phaseLen = 50

	run := func(b *testing.B, useDDPG bool, seed int64) float64 {
		tb, err := testbed.New(testbed.DefaultConfig(), []ran.User{{SNRdB: 35}}, seed)
		if err != nil {
			b.Fatal(err)
		}
		var agent *core.Agent
		var dd *bandit.DDPG
		if useDDPG {
			dd, err = bandit.NewDDPG(bandit.DDPGOptions{Grid: grid, Weights: w, Constraints: phase1, Seed: seed})
		} else {
			agent, err = core.NewAgent(core.Options{Grid: grid, Weights: w, Constraints: phase1})
		}
		if err != nil {
			b.Fatal(err)
		}
		var violation float64
		for _, cons := range []core.Constraints{phase1, phase2} {
			if useDDPG {
				if err := dd.SetConstraints(cons); err != nil {
					b.Fatal(err)
				}
			} else {
				if err := agent.SetConstraints(cons); err != nil {
					b.Fatal(err)
				}
			}
			for t := 0; t < phaseLen; t++ {
				ctx := tb.Context()
				var x core.Control
				if useDDPG {
					x = dd.Select(ctx)
				} else {
					x, _ = agent.SelectControl(ctx)
				}
				k, err := tb.Measure(x)
				if err != nil {
					b.Fatal(err)
				}
				if useDDPG {
					dd.Observe(ctx, x, k)
				} else {
					if err := agent.Observe(ctx, x, k); err != nil {
						b.Fatal(err)
					}
				}
				violation += math.Max(k.Delay-cons.MaxDelay, 0) + math.Max(cons.MinMAP-k.MAP, 0)
			}
		}
		return violation
	}
	for _, mode := range []struct {
		name string
		ddpg bool
	}{{"edgebol", false}, {"ddpg", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var viol float64
			for i := 0; i < b.N; i++ {
				viol += run(b, mode.ddpg, int64(i)+1)
			}
			b.ReportMetric(viol/float64(b.N), "cum-violation")
		})
	}
}

func formatFloat(f float64) string {
	return "beta=" + strconv.FormatFloat(f, 'g', -1, 64)
}

func formatInt(i int) string {
	if i == 0 {
		return "unbounded"
	}
	return strconv.Itoa(i)
}
