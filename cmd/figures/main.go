// Command figures regenerates every figure of the paper's evaluation
// against the simulated prototype and writes the results as CSV tables.
//
// Usage:
//
//	figures [-fig all|fig1..fig6|fig9..fig14] [-scale quick|paper] [-seed N] [-out DIR]
//	        [-metrics ADDR]
//
// Each table holds exactly the series the corresponding paper figure
// plots; EXPERIMENTS.md records the paper-vs-measured comparison. With
// -metrics, every agent and testbed the experiments create reports into
// one registry served as /metrics (plus /debug/pprof) on ADDR — paper-
// scale regenerations take hours and can be watched live.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiment"
	"repro/internal/telemetry"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (fig1..fig6, fig9..fig14, all, or fleetwarm)")
	scaleName := flag.String("scale", "quick", "experiment scale: quick or paper")
	seed := flag.Int64("seed", 1, "base random seed")
	out := flag.String("out", "", "directory for CSV output (omit to print only)")
	maxRows := flag.Int("rows", 12, "max rows of each table to print (0 = all)")
	verify := flag.Bool("verify", false, "check the paper's qualitative claims against each regenerated table")
	metricsAddr := flag.String("metrics", "", "serve /metrics and /debug/pprof on this address (empty disables)")
	flag.Parse()

	var scale experiment.Scale
	switch *scaleName {
	case "quick":
		scale = experiment.QuickScale()
	case "paper":
		scale = experiment.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	if *metricsAddr != "" {
		scale.Telemetry = telemetry.NewRegistry()
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		go func() { _ = http.Serve(ln, telemetry.Mux(scale.Telemetry)) }() // lives until exit
		fmt.Printf("metrics: http://%s/metrics\n", ln.Addr())
	}

	type gen func() ([]*experiment.Table, error)
	one := func(f func(experiment.Scale, int64) (*experiment.Table, error)) gen {
		return func() ([]*experiment.Table, error) {
			t, err := f(scale, *seed)
			if err != nil {
				return nil, err
			}
			return []*experiment.Table{t}, nil
		}
	}
	gens := map[string]gen{
		"fig1": one(experiment.Fig1),
		"fig2": one(experiment.Fig2),
		"fig3": one(experiment.Fig3),
		"fig4": one(experiment.Fig4),
		"fig5": one(experiment.Fig5),
		"fig6": one(experiment.Fig6),
		"fig9": one(experiment.Fig9),
		"fig10": func() ([]*experiment.Table, error) {
			f10, f11, err := experiment.Fig10And11(scale, *seed)
			return []*experiment.Table{f10, f11}, err
		},
		"fig12": one(experiment.Fig12),
		"fig13": one(experiment.Fig13),
		"fig14": one(experiment.Fig14),
		// Beyond the paper: cross-cell warm-start convergence (cold vs
		// warm periods-to-first-safe-learned-period; DESIGN.md §13).
		// Selectable by name, not part of -fig all.
		"fleetwarm": one(experiment.FleetWarmStart),
		// Beyond the paper: adaptive acquisition over the 31⁴×8 ≈ 7.4M-
		// candidate split-inference grid (DESIGN.md §14). Selectable by
		// name, not part of -fig all.
		"biggrid": func() ([]*experiment.Table, error) {
			t, err := experiment.BigGrid(scale, experiment.DefaultBigGrid(), *seed)
			if err != nil {
				return nil, err
			}
			return []*experiment.Table{t}, nil
		},
	}
	order := []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig9", "fig10", "fig12", "fig13", "fig14"}

	var selected []string
	switch *fig {
	case "all":
		selected = order
	case "fig11": // generated together with fig10
		selected = []string{"fig10"}
	default:
		if _, ok := gens[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
			os.Exit(2)
		}
		selected = []string{*fig}
	}

	verifiers := map[string]func(*experiment.Table) ([]experiment.Check, error){
		"fig1":  experiment.VerifyFig1,
		"fig2":  experiment.VerifyFig2,
		"fig3":  experiment.VerifyFig3,
		"fig4":  experiment.VerifyFig4,
		"fig5":  experiment.VerifyFig5,
		"fig6":  experiment.VerifyFig6,
		"fig9":  func(t *experiment.Table) ([]experiment.Check, error) { return experiment.VerifyFig9(t, scale) },
		"fig10": experiment.VerifyFig10,
		"fig12": experiment.VerifyFig12,
		"fig13": experiment.VerifyFig13,
		"fig14": experiment.VerifyFig14,
		"fleetwarm": func(t *experiment.Table) ([]experiment.Check, error) {
			return experiment.VerifyFleetWarmStart(t, scale.Periods)
		},
		"biggrid": experiment.VerifyBigGrid,
	}

	failed := false
	for _, name := range selected {
		start := time.Now()
		tables, err := gens[name]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Print(t.ASCII(*maxRows))
			fmt.Printf("(%d rows, %s)\n\n", len(t.Rows), time.Since(start).Round(time.Millisecond))
			if *out != "" {
				if err := os.MkdirAll(*out, 0o755); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				path := filepath.Join(*out, t.ID+".csv")
				if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Printf("wrote %s\n\n", path)
			}
			if *verify {
				if vf, ok := verifiers[t.ID]; ok {
					checks, err := vf(t)
					if err != nil {
						fmt.Fprintf(os.Stderr, "%s verify: %v\n", t.ID, err)
						os.Exit(1)
					}
					for _, c := range checks {
						status := "PASS"
						if !c.OK {
							status = "FAIL"
							failed = true
						}
						fmt.Printf("  [%s] %s: %s (%s)\n", status, c.Figure, c.Claim, c.Detail)
					}
					fmt.Println()
				}
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
