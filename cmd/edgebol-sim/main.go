// Command edgebol-sim runs the EdgeBOL closed loop against the simulated
// prototype and reports per-period decisions and KPIs plus a convergence
// summary against the exhaustive-search oracle.
//
// Usage:
//
//	edgebol-sim [-periods N] [-users N] [-snr DB] [-delta1 F] [-delta2 F]
//	            [-dmax S] [-rmin F] [-grid LEVELS] [-grid-levels R,A,G,M[,S]]
//	            [-split-layers N] [-seed N] [-quiet]
//	            [-metrics ADDR] [-checkpoint-dir DIR] [-checkpoint-every N]
//	            [-resume PATH] [-engine exact|sparse|auto] [-inducing M]
//	            [-acquisition auto|exhaustive|adaptive]
//	edgebol-sim ckpt info PATH
//	edgebol-sim ckpt latest DIR
//	edgebol-sim -fleet N [-fleet-workers W] [-warm-neighbors K] [...]
//
// With -fleet N, the command runs an N-cell fleet instead of a single
// loop: every cell is its own slice testbed, agent, and O-RAN control
// plane (per-cell E2/O1 endpoints), stepped concurrently over a bounded
// worker pool with per-fleet cost/power/violation roll-ups. With
// -warm-neighbors K, one extra cell joins after the run, warm-started
// from its K most context-similar neighbors' observation histories, and
// the summary reports the periods each joiner needed to reach its first
// safe learned period (cold twin vs warm joiner).
//
// With -grid-levels, the per-dimension level counts replace the uniform
// -grid value; a fifth count (or -split-layers N) opens the
// split-inference dimension, placing part of the detector DNN on the
// device. Grids past the paper's scale (e.g. -grid 31 -split-layers 8,
// 7.4M candidates) are what -acquisition is for: auto keeps the
// bitwise-exact exhaustive sweep on small grids and switches to the
// coarse-to-fine adaptive engine on large ones.
//
// With -metrics, a registry instruments the agent and the testbed and an
// HTTP server on ADDR serves /metrics (Prometheus text) and /debug/pprof
// so a long run can be watched live.
//
// With -checkpoint-dir, the agent's learned state is committed into DIR
// every -checkpoint-every periods (crash-safe write-then-rename, LATEST
// pointer). A later run passing -resume PATH (or -resume latest with
// -checkpoint-dir) warm-starts from that snapshot instead of learning from
// scratch; restore is bitwise lossless, so the resumed run continues
// exactly where the interrupted one stopped. The ckpt subcommand inspects
// snapshot files without loading an agent.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"

	"repro/internal/bandit"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/fleet"
	"repro/internal/multislice"
	"repro/internal/oran"
	"repro/internal/ran"
	"repro/internal/telemetry"
	"repro/internal/testbed"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "ckpt" {
		ckptMain(os.Args[2:])
		return
	}
	periods := flag.Int("periods", 120, "control periods to run")
	users := flag.Int("users", 1, "number of users (heterogeneous SNRs beyond the first)")
	snr := flag.Float64("snr", 35, "first user's mean uplink SNR in dB")
	delta1 := flag.Float64("delta1", 1, "server energy price δ1 (mu/W)")
	delta2 := flag.Float64("delta2", 1, "vBS energy price δ2 (mu/W)")
	dmax := flag.Float64("dmax", 0.4, "max service delay in seconds")
	rmin := flag.Float64("rmin", 0.5, "min mAP")
	gridLevels := flag.Int("grid", 7, "control-grid levels per dimension")
	gridPerDim := flag.String("grid-levels", "", "comma-separated per-dimension level counts res,air,gpu,mcs[,split] (overrides -grid)")
	splitLayers := flag.Int("split-layers", 0, "levels of the split-inference control dimension (0 = pinned at all-edge)")
	acqName := flag.String("acquisition", "auto", "acquisition engine: auto, exhaustive, or adaptive")
	seed := flag.Int64("seed", 1, "random seed")
	quiet := flag.Bool("quiet", false, "suppress per-period lines")
	metricsAddr := flag.String("metrics", "", "serve /metrics and /debug/pprof on this address (empty disables)")
	ckptDir := flag.String("checkpoint-dir", "", "commit agent checkpoints into this directory (empty disables)")
	ckptEvery := flag.Int("checkpoint-every", 10, "checkpoint interval in periods (with -checkpoint-dir)")
	resume := flag.String("resume", "", "warm-start from this checkpoint file; \"latest\" resolves via -checkpoint-dir")
	engineName := flag.String("engine", "exact", "GP inference engine: exact, sparse, or auto (convert when history reaches the switch threshold)")
	inducing := flag.Int("inducing", 0, "sparse-engine inducing-point budget (0 = default 128)")
	fleetN := flag.Int("fleet", 0, "run an N-cell fleet instead of a single loop (0 disables)")
	fleetWorkers := flag.Int("fleet-workers", 0, "fleet worker-pool size (0 = default)")
	warmNeighbors := flag.Int("warm-neighbors", 0, "with -fleet: admit one joiner warm-started from its K most similar neighbors (0 disables)")
	flag.Parse()

	engine, err := parseEngine(*engineName)
	if err != nil {
		fatal(err)
	}
	acq, err := parseAcquisition(*acqName)
	if err != nil {
		fatal(err)
	}
	grid, err := buildGrid(*gridLevels, *gridPerDim, *splitLayers)
	if err != nil {
		fatal(err)
	}

	if *fleetN > 0 {
		fleetMain(fleetParams{
			cells:     *fleetN,
			workers:   *fleetWorkers,
			neighbors: *warmNeighbors,
			periods:   *periods,
			users:     *users,
			snr:       *snr,
			weights:   core.CostWeights{Delta1: *delta1, Delta2: *delta2},
			cons:      core.Constraints{MaxDelay: *dmax, MinMAP: *rmin},
			grid:      grid,
			seed:      *seed,
			engine:    engine,
			acq:       acq,
			inducing:  *inducing,
			metrics:   *metricsAddr,
			quiet:     *quiet,
		})
		return
	}

	var reg *telemetry.Registry
	if *metricsAddr != "" {
		reg = telemetry.NewRegistry()
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatal(err)
		}
		go func() { _ = http.Serve(ln, telemetry.Mux(reg)) }() // lives until exit
		fmt.Printf("metrics: http://%s/metrics\n", ln.Addr())
	}

	us := make([]ran.User, *users)
	for i := range us {
		us[i] = ran.User{SNRdB: *snr - 2*float64(i)}
	}
	tb, err := testbed.New(testbed.DefaultConfig(), us, *seed)
	if err != nil {
		fatal(err)
	}
	tb.Instrument(reg)
	w := core.CostWeights{Delta1: *delta1, Delta2: *delta2}
	cons := core.Constraints{MaxDelay: *dmax, MinMAP: *rmin}
	opts := core.Options{
		Grid: grid, Weights: w, Constraints: cons, Telemetry: reg,
		Engine: engine, InducingPoints: *inducing, Acquisition: acq,
	}
	agent, err := loadOrNewAgent(opts, *resume, *ckptDir)
	if err != nil {
		fatal(err)
	}
	if !*quiet {
		fmt.Printf("acquisition: %s over %d candidates\n", agent.AcquisitionEngine(), grid.Size())
	}
	var ckpt *oran.Checkpointer
	if *ckptDir != "" {
		ckpt, err = oran.NewCheckpointer(*ckptDir, *ckptEvery)
		if err != nil {
			fatal(err)
		}
		ckpt.Instrument(reg)
	}
	if t0 := agent.Observations(); t0 > 0 {
		fmt.Printf("resumed from %s at period %d\n", *resume, t0)
	}

	var costs []float64
	violations := 0
	for t := 0; t < *periods; t++ {
		x, k, info, err := agent.Step(tb)
		if err != nil {
			fatal(err)
		}
		if ckpt != nil {
			if path, err := ckpt.Tick(agent); err != nil {
				fatal(err)
			} else if path != "" && !*quiet {
				fmt.Printf("checkpoint: %s\n", path)
			}
		}
		cost := w.Cost(k)
		costs = append(costs, cost)
		viol := ""
		if !cons.Satisfied(k) {
			viol = " VIOLATION"
			if t >= *periods/3 {
				violations++
			}
		}
		if !*quiet {
			split := ""
			if grid.LevelsPerDim[4] > 1 {
				split = fmt.Sprintf(" spl %.2f", x.SplitLayer)
			}
			fmt.Printf("t=%3d  x=[res %.2f air %.2f gpu %.2f mcs %.2f%s]  d=%.3fs mAP=%.3f  ps=%.1fW pb=%.2fW  u=%.1f  |S|=%d%s\n",
				t, x.Resolution, x.Airtime, x.GPUSpeed, x.MCS, split,
				k.Delay, k.MAP, k.ServerPower, k.BSPower, cost, info.SafeSetSize, viol)
		}
	}

	tail := costs
	if len(tail) > 25 {
		tail = tail[len(tail)-25:]
	}
	fmt.Printf("\nconverged cost (median of last %d): %.1f mu\n", len(tail), experiment.Median(tail))
	fmt.Printf("constraint violations after burn-in: %d/%d periods\n", violations, *periods-*periods/3)

	if grid.Size() > 1<<18 {
		fmt.Printf("oracle: skipped (exhaustive search over %d candidates)\n", grid.Size())
		return
	}
	xo, oc, err := bandit.Oracle(tb.Expected, grid, w, cons)
	if err != nil {
		fmt.Printf("oracle: %v\n", err)
		return
	}
	fmt.Printf("oracle (exhaustive search): cost %.1f mu at [res %.2f air %.2f gpu %.2f mcs %.2f]\n",
		oc, xo.Resolution, xo.Airtime, xo.GPUSpeed, xo.MCS)
	fmt.Printf("optimality gap: %.1f%%\n", 100*(experiment.Median(tail)-oc)/oc)
}

// fleetParams carries the -fleet mode's resolved flags.
type fleetParams struct {
	cells, workers, neighbors int
	periods, users            int
	snr                       float64
	weights                   core.CostWeights
	cons                      core.Constraints
	grid                      core.GridSpec
	seed                      int64
	engine                    core.EngineSelector
	acq                       core.AcquisitionMode
	inducing                  int
	metrics                   string
	quiet                     bool
}

// fleetMain runs the -fleet mode: N cells behind one coordinator, each
// with its own O-RAN control plane, plus an optional warm-started joiner.
func fleetMain(p fleetParams) {
	var reg *telemetry.Registry
	if p.metrics != "" {
		reg = telemetry.NewRegistry()
		ln, err := net.Listen("tcp", p.metrics)
		if err != nil {
			fatal(err)
		}
		go func() { _ = http.Serve(ln, telemetry.Mux(reg)) }() // lives until exit
		fmt.Printf("metrics: http://%s/metrics\n", ln.Addr())
	}
	us := make([]ran.User, p.users)
	for i := range us {
		us[i] = ran.User{SNRdB: p.snr - 2*float64(i)}
	}
	slice := multislice.SliceConfig{
		Name:          "cell",
		AirtimeBudget: 0.9,
		GPUShare:      0.9,
		Users:         us,
		Weights:       p.weights,
		Constraints:   p.cons,
	}
	opts := fleet.Options{
		Cells:    fleet.Cells(p.cells, slice),
		Agent:    core.Options{Grid: p.grid, Engine: p.engine, InducingPoints: p.inducing, Acquisition: p.acq},
		Workers:  p.workers,
		BaseSeed: p.seed,
		WarmStart: fleet.WarmStartPolicy{
			Neighbors: p.neighbors,
		},
		Telemetry: reg,
	}
	f, err := fleet.New(context.Background(), opts)
	if err != nil {
		fatal(err)
	}
	defer func() { _ = f.Close() }()
	fmt.Printf("fleet: %d cells, %d periods\n", p.cells, p.periods)
	for t := 0; t < p.periods; t++ {
		res, err := f.Step()
		if err != nil {
			fatal(err)
		}
		if !p.quiet {
			var cost, power float64
			viol := 0
			for _, r := range res {
				cost += r.Cost
				power += r.KPIs.ServerPower + r.KPIs.BSPower
				if !r.Satisfied {
					viol++
				}
			}
			fmt.Printf("t=%3d  fleet cost=%.1f mu  power=%.1f W  violations=%d/%d\n",
				t, cost, power, viol, len(res))
		}
	}
	sum := f.Summary()
	fmt.Printf("\nfleet summary: %d cells, %d periods, total cost %.1f mu, %d violations, last-period power %.1f W\n",
		sum.Cells, sum.Periods, sum.TotalCost, sum.Violations, sum.PowerWatts)

	if p.neighbors > 0 {
		joiner := slice
		joiner.Name = "joiner"
		cell, seeded, err := f.AddCell(context.Background(), fleet.CellConfig{Name: "joiner", Slice: joiner})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("joiner: warm-started with %d pooled samples from %d neighbors\n", seeded, p.neighbors)
		warm := firstSafePeriod(cell.Agent, cell.Env, p.periods)
		coldEnv, err := multislice.NewSliceEnv(testbed.DefaultConfig(), joiner, cell.Seed)
		if err != nil {
			fatal(err)
		}
		coldAgent, err := core.NewAgent(core.Options{
			Grid: p.grid, Weights: p.weights, Constraints: p.cons,
			Engine: p.engine, InducingPoints: p.inducing, Acquisition: p.acq,
		})
		if err != nil {
			fatal(err)
		}
		cold := firstSafePeriod(coldAgent, coldEnv, p.periods)
		fmt.Printf("periods to first safe learned period: warm %s, cold %s\n",
			periodsString(warm, p.periods), periodsString(cold, p.periods))
	}
}

// firstSafePeriod steps the agent until it first picks a learned
// (non-seed) control that satisfies the constraints; 0 means never
// within the horizon.
func firstSafePeriod(agent *core.Agent, env core.Environment, maxPeriods int) int {
	cons := agent.Constraints()
	for t := 1; t <= maxPeriods; t++ {
		_, k, info, err := agent.Step(env)
		if err != nil {
			fatal(err)
		}
		if !info.FromSeed && cons.Satisfied(k) {
			return t
		}
	}
	return 0
}

func periodsString(p, horizon int) string {
	if p == 0 {
		return fmt.Sprintf(">%d", horizon)
	}
	return fmt.Sprintf("%d", p)
}

// parseEngine maps the -engine flag onto the core selector.
func parseEngine(name string) (core.EngineSelector, error) {
	switch name {
	case "exact":
		return core.EngineExact, nil
	case "sparse":
		return core.EngineSparse, nil
	case "auto":
		return core.EngineAuto, nil
	}
	return 0, fmt.Errorf("unknown -engine %q (want exact, sparse, or auto)", name)
}

// parseAcquisition maps the -acquisition flag onto the core mode.
func parseAcquisition(name string) (core.AcquisitionMode, error) {
	switch name {
	case "auto":
		return core.AcqAuto, nil
	case "exhaustive":
		return core.AcqExhaustive, nil
	case "adaptive":
		return core.AcqAdaptive, nil
	}
	return 0, fmt.Errorf("unknown -acquisition %q (want auto, exhaustive, or adaptive)", name)
}

// buildGrid resolves -grid, -grid-levels, and -split-layers into one
// GridSpec: -grid-levels replaces the uniform count per dimension (a
// fifth entry opens the split dimension), and -split-layers overrides the
// split dimension's count on either base.
func buildGrid(levels int, perDim string, splitLayers int) (core.GridSpec, error) {
	g := core.GridSpec{Levels: levels, MinResolution: 0.1, MinAirtime: 0.1}
	if perDim != "" {
		parts := strings.Split(perDim, ",")
		if len(parts) != 4 && len(parts) != 5 {
			return g, fmt.Errorf("-grid-levels wants 4 or 5 comma-separated counts, got %q", perDim)
		}
		for i, p := range parts {
			n, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || n < 1 {
				return g, fmt.Errorf("-grid-levels entry %q is not a positive count", p)
			}
			g.LevelsPerDim[i] = n
		}
	}
	if splitLayers < 0 {
		return g, fmt.Errorf("-split-layers %d is negative", splitLayers)
	}
	if splitLayers > 0 {
		g.LevelsPerDim[4] = splitLayers
	}
	return g, nil
}

// loadOrNewAgent builds the agent, warm-starting from a checkpoint when
// -resume names a file (or "latest", resolved against -checkpoint-dir).
func loadOrNewAgent(opts core.Options, resume, dir string) (*core.Agent, error) {
	if resume == "" {
		return core.NewAgent(opts)
	}
	path := resume
	if resume == "latest" {
		if dir == "" {
			return nil, fmt.Errorf("-resume latest requires -checkpoint-dir")
		}
		var err error
		path, err = checkpoint.Latest(dir)
		if err != nil {
			return nil, err
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.LoadCheckpoint(f, opts)
}

// ckptMain implements the ckpt subcommand: offline inspection of snapshot
// files and directories, no agent construction involved.
func ckptMain(args []string) {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: edgebol-sim ckpt {info PATH | latest DIR}")
		os.Exit(2)
	}
	switch args[0] {
	case "info":
		f, err := os.Open(args[1])
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		info, err := core.ReadCheckpointInfo(f)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("format version: %d\n", info.Version)
		fmt.Printf("periods:        %d\n", info.Periods)
		fmt.Printf("decomposed:     %v\n", info.DecomposedCost)
		fmt.Printf("engine:         %s\n", info.Engine)
		fmt.Printf("acquisition:    %s\n", info.Acquisition)
		if info.Engine != "exact" {
			fmt.Printf("inducing:       %d\n", info.InducingPoints)
		}
		if info.Engine == "auto" {
			fmt.Printf("switch at:      %d\n", info.SparseSwitchAt)
		}
		for _, o := range info.Objectives {
			if o.Engine == "sparse" {
				fmt.Printf("objective %-12s %d observations (sparse, basis %d)\n",
					o.Name, o.Observations, o.InducingPoints)
				continue
			}
			fmt.Printf("objective %-12s %d observations\n", o.Name, o.Observations)
		}
	case "latest":
		path, err := checkpoint.Latest(args[1])
		if err != nil {
			fatal(err)
		}
		fmt.Println(path)
	default:
		fmt.Fprintf(os.Stderr, "unknown ckpt subcommand %q\n", args[0])
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
