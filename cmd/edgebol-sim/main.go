// Command edgebol-sim runs the EdgeBOL closed loop against the simulated
// prototype and reports per-period decisions and KPIs plus a convergence
// summary against the exhaustive-search oracle.
//
// Usage:
//
//	edgebol-sim [-periods N] [-users N] [-snr DB] [-delta1 F] [-delta2 F]
//	            [-dmax S] [-rmin F] [-grid LEVELS] [-seed N] [-quiet]
//	            [-metrics ADDR]
//
// With -metrics, a registry instruments the agent and the testbed and an
// HTTP server on ADDR serves /metrics (Prometheus text) and /debug/pprof
// so a long run can be watched live.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"repro/internal/bandit"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/ran"
	"repro/internal/telemetry"
	"repro/internal/testbed"
)

func main() {
	periods := flag.Int("periods", 120, "control periods to run")
	users := flag.Int("users", 1, "number of users (heterogeneous SNRs beyond the first)")
	snr := flag.Float64("snr", 35, "first user's mean uplink SNR in dB")
	delta1 := flag.Float64("delta1", 1, "server energy price δ1 (mu/W)")
	delta2 := flag.Float64("delta2", 1, "vBS energy price δ2 (mu/W)")
	dmax := flag.Float64("dmax", 0.4, "max service delay in seconds")
	rmin := flag.Float64("rmin", 0.5, "min mAP")
	gridLevels := flag.Int("grid", 7, "control-grid levels per dimension")
	seed := flag.Int64("seed", 1, "random seed")
	quiet := flag.Bool("quiet", false, "suppress per-period lines")
	metricsAddr := flag.String("metrics", "", "serve /metrics and /debug/pprof on this address (empty disables)")
	flag.Parse()

	var reg *telemetry.Registry
	if *metricsAddr != "" {
		reg = telemetry.NewRegistry()
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatal(err)
		}
		go func() { _ = http.Serve(ln, telemetry.Mux(reg)) }() // lives until exit
		fmt.Printf("metrics: http://%s/metrics\n", ln.Addr())
	}

	us := make([]ran.User, *users)
	for i := range us {
		us[i] = ran.User{SNRdB: *snr - 2*float64(i)}
	}
	tb, err := testbed.New(testbed.DefaultConfig(), us, *seed)
	if err != nil {
		fatal(err)
	}
	tb.Instrument(reg)
	w := core.CostWeights{Delta1: *delta1, Delta2: *delta2}
	cons := core.Constraints{MaxDelay: *dmax, MinMAP: *rmin}
	grid := core.GridSpec{Levels: *gridLevels, MinResolution: 0.1, MinAirtime: 0.1}
	agent, err := core.NewAgent(core.Options{Grid: grid, Weights: w, Constraints: cons, Telemetry: reg})
	if err != nil {
		fatal(err)
	}

	var costs []float64
	violations := 0
	for t := 0; t < *periods; t++ {
		x, k, info, err := agent.Step(tb)
		if err != nil {
			fatal(err)
		}
		cost := w.Cost(k)
		costs = append(costs, cost)
		viol := ""
		if !cons.Satisfied(k) {
			viol = " VIOLATION"
			if t >= *periods/3 {
				violations++
			}
		}
		if !*quiet {
			fmt.Printf("t=%3d  x=[res %.2f air %.2f gpu %.2f mcs %.2f]  d=%.3fs mAP=%.3f  ps=%.1fW pb=%.2fW  u=%.1f  |S|=%d%s\n",
				t, x.Resolution, x.Airtime, x.GPUSpeed, x.MCS,
				k.Delay, k.MAP, k.ServerPower, k.BSPower, cost, info.SafeSetSize, viol)
		}
	}

	tail := costs
	if len(tail) > 25 {
		tail = tail[len(tail)-25:]
	}
	fmt.Printf("\nconverged cost (median of last %d): %.1f mu\n", len(tail), experiment.Median(tail))
	fmt.Printf("constraint violations after burn-in: %d/%d periods\n", violations, *periods-*periods/3)

	xo, oc, err := bandit.Oracle(tb.Expected, grid, w, cons)
	if err != nil {
		fmt.Printf("oracle: %v\n", err)
		return
	}
	fmt.Printf("oracle (exhaustive search): cost %.1f mu at [res %.2f air %.2f gpu %.2f mcs %.2f]\n",
		oc, xo.Resolution, xo.Airtime, xo.GPUSpeed, xo.MCS)
	fmt.Printf("optimality gap: %.1f%%\n", 100*(experiment.Median(tail)-oc)/oc)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
