package main

import (
	"math"
	"testing"
)

const sampleAfter = `goos: linux
goarch: amd64
pkg: repro/internal/gp
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPosteriorBatch/t=50         	       5	  12345678 ns/op
BenchmarkPosteriorBatch/t=200-8      	       5	 147000000 ns/op
PASS
ok  	repro/internal/gp	1.5s
`

const sampleBefore = `cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPosteriorBatch/t=200        	       3	 301083834 ns/op
BenchmarkPosteriorBatch/t=1000       	       3	6780283977 ns/op
`

func TestParseBench(t *testing.T) {
	run := parseBench(sampleAfter)
	if run.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Fatalf("cpu = %q", run.CPU)
	}
	if len(run.Results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(run.Results))
	}
	first := run.Results[0]
	if first.Name != "PosteriorBatch/t=50" || first.Iterations != 5 {
		t.Fatalf("first result = %+v", first)
	}
	if math.Abs(first.NsPerOp-12345678) > 0.5 {
		t.Fatalf("first ns/op = %v", first.NsPerOp)
	}
	// The -8 GOMAXPROCS suffix must be stripped so cross-machine runs join.
	if run.Results[1].Name != "PosteriorBatch/t=200" {
		t.Fatalf("suffixed name parsed as %q", run.Results[1].Name)
	}
}

func TestCompareJoinsBaseline(t *testing.T) {
	cmp := compare(parseBench(sampleBefore), parseBench(sampleAfter))
	if len(cmp) != 2 {
		t.Fatalf("compared %d entries, want 2", len(cmp))
	}
	// t=50 has no baseline: speedup omitted.
	if cmp[0].Name != "PosteriorBatch/t=50" || cmp[0].Speedup != 0 {
		t.Fatalf("entry without baseline = %+v", cmp[0])
	}
	// t=200 joins across the suffix difference.
	want := 301083834.0 / 147000000.0
	if math.Abs(cmp[1].Speedup-want) > 1e-9 {
		t.Fatalf("speedup = %v, want %v", cmp[1].Speedup, want)
	}
	if math.Abs(cmp[1].BeforeNsOp-301083834) > 0.5 {
		t.Fatalf("before ns/op = %v", cmp[1].BeforeNsOp)
	}
}

func TestParseBenchIgnoresGarbage(t *testing.T) {
	run := parseBench("hello\nBenchmarkBroken abc ns/op\n\nPASS\n")
	if len(run.Results) != 0 {
		t.Fatalf("parsed %d results from garbage", len(run.Results))
	}
}
