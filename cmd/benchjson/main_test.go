package main

import (
	"math"
	"testing"
)

const sampleAfter = `goos: linux
goarch: amd64
pkg: repro/internal/gp
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPosteriorBatch/t=50         	       5	  12345678 ns/op
BenchmarkPosteriorBatch/t=200-8      	       5	 147000000 ns/op
PASS
ok  	repro/internal/gp	1.5s
`

const sampleBefore = `cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPosteriorBatch/t=200        	       3	 301083834 ns/op
BenchmarkPosteriorBatch/t=1000       	       3	6780283977 ns/op
`

func TestParseBench(t *testing.T) {
	run := parseBench(sampleAfter)
	if run.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Fatalf("cpu = %q", run.CPU)
	}
	if len(run.Results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(run.Results))
	}
	first := run.Results[0]
	if first.Name != "PosteriorBatch/t=50" || first.Iterations != 5 {
		t.Fatalf("first result = %+v", first)
	}
	if math.Abs(first.NsPerOp-12345678) > 0.5 {
		t.Fatalf("first ns/op = %v", first.NsPerOp)
	}
	// The -8 GOMAXPROCS suffix must be stripped so cross-machine runs join.
	if run.Results[1].Name != "PosteriorBatch/t=200" {
		t.Fatalf("suffixed name parsed as %q", run.Results[1].Name)
	}
}

func TestCompareJoinsBaseline(t *testing.T) {
	cmp := compare(parseBench(sampleBefore), parseBench(sampleAfter))
	if len(cmp) != 2 {
		t.Fatalf("compared %d entries, want 2", len(cmp))
	}
	// t=50 has no baseline: speedup omitted.
	if cmp[0].Name != "PosteriorBatch/t=50" || cmp[0].Speedup != 0 {
		t.Fatalf("entry without baseline = %+v", cmp[0])
	}
	// t=200 joins across the suffix difference.
	want := 301083834.0 / 147000000.0
	if math.Abs(cmp[1].Speedup-want) > 1e-9 {
		t.Fatalf("speedup = %v, want %v", cmp[1].Speedup, want)
	}
	if math.Abs(cmp[1].BeforeNsOp-301083834) > 0.5 {
		t.Fatalf("before ns/op = %v", cmp[1].BeforeNsOp)
	}
}

func TestParseBenchIgnoresGarbage(t *testing.T) {
	run := parseBench("hello\nBenchmarkBroken abc ns/op\n\nPASS\n")
	if len(run.Results) != 0 {
		t.Fatalf("parsed %d results from garbage", len(run.Results))
	}
}

const sampleCount2 = `cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPosteriorBatch/t=50         	       5	  13000000 ns/op
BenchmarkPosteriorBatch/t=50         	       5	  12000000 ns/op
BenchmarkPosteriorBatch/t=50         	       5	  12500000 ns/op
`

func TestMergeBestWithinOneFile(t *testing.T) {
	merged := mergeBest(parseBench(sampleCount2))
	if len(merged.Results) != 1 {
		t.Fatalf("merged to %d results, want 1", len(merged.Results))
	}
	if math.Abs(merged.Results[0].NsPerOp-12000000) > 0.5 {
		t.Fatalf("best-of ns/op = %v, want the minimum 12000000", merged.Results[0].NsPerOp)
	}
}

func TestMergeBestAcrossFiles(t *testing.T) {
	a := parseBench("BenchmarkX/t=1 1 2000 ns/op\nBenchmarkY/t=1 1 900 ns/op\n")
	b := parseBench("cpu: somecpu\nBenchmarkX/t=1 1 1500 ns/op\n")
	merged := mergeBest(a, b)
	if len(merged.Results) != 2 {
		t.Fatalf("merged to %d results, want 2", len(merged.Results))
	}
	// First-appearance order is kept; X takes the later, faster measurement.
	if merged.Results[0].Name != "X/t=1" || merged.Results[0].NsPerOp != 1500 {
		t.Fatalf("X merged to %+v", merged.Results[0])
	}
	if merged.Results[1].Name != "Y/t=1" || merged.Results[1].NsPerOp != 900 {
		t.Fatalf("Y merged to %+v", merged.Results[1])
	}
	if merged.CPU != "somecpu" {
		t.Fatalf("merged CPU = %q", merged.CPU)
	}
}

const sampleEngines = `cpu: somecpu
BenchmarkGridSweep/t=200/engine=generic 	       3	 300000000 ns/op
BenchmarkGridSweep/t=200/engine=plan    	       3	 100000000 ns/op
BenchmarkGridSweep/t=50/engine=plan     	       3	  40000000 ns/op
`

func TestCompareVsGeneric(t *testing.T) {
	cmp := compare(Run{}, parseBench(sampleEngines))
	byName := make(map[string]Comparison)
	for _, c := range cmp {
		byName[c.Name] = c
	}
	paired := byName["GridSweep/t=200/engine=plan"]
	if math.Abs(paired.VsGeneric-3) > 1e-9 {
		t.Fatalf("vs_generic = %v, want 3", paired.VsGeneric)
	}
	if byName["GridSweep/t=200/engine=generic"].VsGeneric != 0 {
		t.Fatal("generic entry should not carry vs_generic")
	}
	// t=50 has no generic counterpart in this run: column omitted.
	if byName["GridSweep/t=50/engine=plan"].VsGeneric != 0 {
		t.Fatal("unpaired plan entry should not carry vs_generic")
	}
}

func regressionReport() Report {
	return Report{
		CPU: "somecpu",
		Benchmarks: []Comparison{
			{Name: "PosteriorBatch/t=200", AfterNsOp: 100000000},
			{Name: "SelectControl/t=1000", AfterNsOp: 4000000000},
		},
	}
}

func TestCheckRegressionPasses(t *testing.T) {
	run := parseBench("cpu: somecpu\nBenchmarkPosteriorBatch/t=200 1 110000000 ns/op\n")
	failures, applied := checkRegression(regressionReport(), run, 1.25)
	if !applied {
		t.Fatal("check should apply: same CPU, benchmark present")
	}
	if len(failures) != 0 {
		t.Fatalf("within-tolerance run failed: %v", failures)
	}
}

func TestCheckRegressionFails(t *testing.T) {
	run := parseBench("cpu: somecpu\nBenchmarkPosteriorBatch/t=200 1 130000000 ns/op\n")
	failures, applied := checkRegression(regressionReport(), run, 1.25)
	if !applied || len(failures) != 1 {
		t.Fatalf("regressed run: applied=%v failures=%v", applied, failures)
	}
}

func TestCheckRegressionSkipsAbsentBenchmarks(t *testing.T) {
	// SelectControl/t=1000 is not in the run (e.g. skipped under -short):
	// its recorded entry must not fail the check.
	run := parseBench("cpu: somecpu\nBenchmarkPosteriorBatch/t=200 1 100000000 ns/op\n")
	failures, applied := checkRegression(regressionReport(), run, 1.25)
	if !applied || len(failures) != 0 {
		t.Fatalf("applied=%v failures=%v", applied, failures)
	}
}

func TestCheckRegressionSkipsOnCPUMismatch(t *testing.T) {
	run := parseBench("cpu: othercpu\nBenchmarkPosteriorBatch/t=200 1 900000000 ns/op\n")
	failures, applied := checkRegression(regressionReport(), run, 1.25)
	if applied || failures != nil {
		t.Fatalf("cross-CPU check must skip: applied=%v failures=%v", applied, failures)
	}
}
