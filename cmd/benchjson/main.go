// Command benchjson converts `go test -bench` text output into a small
// machine-readable JSON report, optionally joining a baseline run to record
// before/after numbers and speedups. `make bench` uses it to produce
// BENCH_gp.json, the repository's canonical GP-inference performance record.
//
// Usage:
//
//	benchjson -after results/bench_after.txt \
//	    [-after more.txt] [-before results/bench_before.txt] [-out BENCH_gp.json]
//
//	benchjson -check BENCH_gp.json -after current.txt [-tolerance 1.25]
//
// -after may repeat, and each file may itself hold several measurements per
// benchmark (`go test -count N`); benchjson keeps the best (minimum) ns/op
// per benchmark, the standard guard against scheduler noise. Benchmarks named
// `.../engine=plan` are paired with their `.../engine=generic` counterpart
// from the same run and reported with a vs_generic speedup column.
//
// -check compares a current run against a recorded report and exits nonzero
// when any tracked benchmark regressed beyond the tolerance factor. Recorded
// benchmarks absent from the run (e.g. skipped under -short) are ignored, and
// the whole check is skipped when the report was recorded on a different CPU
// — cross-machine ns/op comparisons measure the hardware, not the code.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Iterations int     `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
}

// Run is one parsed `go test -bench` output stream.
type Run struct {
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// Comparison joins an after result with its baseline counterpart.
type Comparison struct {
	Name        string  `json:"name"`
	BeforeNsOp  float64 `json:"before_ns_per_op,omitempty"`
	AfterNsOp   float64 `json:"after_ns_per_op"`
	Speedup     float64 `json:"speedup,omitempty"`
	BaselineCPU string  `json:"baseline_cpu,omitempty"`
	// VsGeneric is the same-run speedup of an engine=plan benchmark over
	// its engine=generic counterpart.
	VsGeneric float64 `json:"vs_generic,omitempty"`
}

// Report is the JSON document benchjson emits.
type Report struct {
	CPU        string       `json:"cpu,omitempty"`
	Note       string       `json:"note,omitempty"`
	Benchmarks []Comparison `json:"benchmarks"`
}

var (
	benchLine = regexp.MustCompile(`^Benchmark(\S+)\s+(\d+)\s+([0-9.]+) ns/op`)
	// gomaxprocsSuffix is the -N decoration go test appends to benchmark
	// names when GOMAXPROCS > 1; it is stripped so runs from machines with
	// different core counts join on the same name.
	gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)
)

// parseBench extracts benchmark results and the reported CPU from `go test
// -bench` output. Unrelated lines (goos, pkg, PASS, test logs) are ignored.
// Repeated measurements of one benchmark (`-count N`) all survive parsing;
// mergeBest collapses them.
func parseBench(text string) Run {
	var run Run
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			run.CPU = cpu
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		run.Results = append(run.Results, Result{
			Name:       gomaxprocsSuffix.ReplaceAllString(m[1], ""),
			Iterations: iters,
			NsPerOp:    ns,
		})
	}
	return run
}

// mergeBest collapses several runs into one, keeping the minimum ns/op per
// benchmark name (first-appearance order) — the least-noise estimate across
// -count repetitions and repeated -after files.
func mergeBest(runs ...Run) Run {
	var merged Run
	index := make(map[string]int)
	for _, r := range runs {
		if merged.CPU == "" {
			merged.CPU = r.CPU
		}
		for _, res := range r.Results {
			i, seen := index[res.Name]
			if !seen {
				index[res.Name] = len(merged.Results)
				merged.Results = append(merged.Results, res)
				continue
			}
			if res.NsPerOp < merged.Results[i].NsPerOp {
				merged.Results[i] = res
			}
		}
	}
	return merged
}

// compare joins after results against the baseline by benchmark name and
// pairs engine=plan entries with their same-run engine=generic counterpart.
func compare(before, after Run) []Comparison {
	base := make(map[string]float64, len(before.Results))
	for _, r := range before.Results {
		base[r.Name] = r.NsPerOp
	}
	generic := make(map[string]float64, len(after.Results))
	for _, r := range after.Results {
		if strings.Contains(r.Name, "/engine=generic") {
			generic[r.Name] = r.NsPerOp
		}
	}
	out := make([]Comparison, 0, len(after.Results))
	for _, r := range after.Results {
		c := Comparison{Name: r.Name, AfterNsOp: r.NsPerOp}
		if b, ok := base[r.Name]; ok && r.NsPerOp > 0 {
			c.BeforeNsOp = b
			c.Speedup = b / r.NsPerOp
		}
		if strings.Contains(r.Name, "/engine=plan") && r.NsPerOp > 0 {
			pair := strings.Replace(r.Name, "/engine=plan", "/engine=generic", 1)
			if g, ok := generic[pair]; ok {
				c.VsGeneric = g / r.NsPerOp
			}
		}
		out = append(out, c)
	}
	return out
}

// checkRegression compares the current run against a recorded report.
// It returns the failure messages (nil means pass) and whether the check
// actually applied — a CPU mismatch or an empty intersection skips it.
func checkRegression(report Report, current Run, tolerance float64) (failures []string, applied bool) {
	if report.CPU != "" && current.CPU != "" && report.CPU != current.CPU {
		return nil, false
	}
	cur := make(map[string]float64, len(current.Results))
	for _, r := range current.Results {
		cur[r.Name] = r.NsPerOp
	}
	for _, b := range report.Benchmarks {
		ns, ok := cur[b.Name]
		if !ok || b.AfterNsOp <= 0 {
			continue // skipped under -short, or not recorded with a time
		}
		applied = true
		if ns > b.AfterNsOp*tolerance {
			failures = append(failures, fmt.Sprintf(
				"%s: %.0f ns/op vs recorded %.0f ns/op (%.2fx, tolerance %.2fx)",
				b.Name, ns, b.AfterNsOp, ns/b.AfterNsOp, tolerance))
		}
	}
	return failures, applied
}

// stringList implements a repeatable -after flag.
type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func parseAfter(paths []string) (Run, error) {
	runs := make([]Run, 0, len(paths))
	for _, p := range paths {
		text, err := os.ReadFile(p)
		if err != nil {
			return Run{}, err
		}
		runs = append(runs, parseBench(string(text)))
	}
	after := mergeBest(runs...)
	if len(after.Results) == 0 {
		return Run{}, fmt.Errorf("no benchmark results found in %s", strings.Join(paths, ", "))
	}
	return after, nil
}

func runReport(beforePath string, afterPaths []string, outPath, note string) error {
	after, err := parseAfter(afterPaths)
	if err != nil {
		return err
	}
	var before Run
	if beforePath != "" {
		beforeText, err := os.ReadFile(beforePath)
		if err != nil {
			return err
		}
		before = mergeBest(parseBench(string(beforeText)))
	}
	report := Report{CPU: after.CPU, Note: note, Benchmarks: compare(before, after)}
	if before.CPU != "" && before.CPU != after.CPU {
		for i := range report.Benchmarks {
			report.Benchmarks[i].BaselineCPU = before.CPU
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" || outPath == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(outPath, data, 0o644)
}

// runCheck executes the regression gate. The returned error carries the
// failure report; a nil error means pass or skip.
func runCheck(checkPath string, afterPaths []string, tolerance float64) error {
	data, err := os.ReadFile(checkPath)
	if err != nil {
		return err
	}
	var report Report
	if err := json.Unmarshal(data, &report); err != nil {
		return fmt.Errorf("parsing %s: %w", checkPath, err)
	}
	after, err := parseAfter(afterPaths)
	if err != nil {
		return err
	}
	failures, applied := checkRegression(report, after, tolerance)
	if !applied {
		if report.CPU != after.CPU {
			fmt.Printf("benchjson: check skipped: recorded on %q, running on %q\n", report.CPU, after.CPU)
		} else {
			fmt.Println("benchjson: check skipped: no recorded benchmark appears in the run")
		}
		return nil
	}
	if len(failures) > 0 {
		return fmt.Errorf("regression beyond %.2fx tolerance:\n  %s",
			tolerance, strings.Join(failures, "\n  "))
	}
	fmt.Printf("benchjson: %s: no regression beyond %.2fx\n", checkPath, tolerance)
	return nil
}

func main() {
	var afterPaths stringList
	beforePath := flag.String("before", "", "baseline `file` of go test -bench output (optional)")
	flag.Var(&afterPaths, "after", "current `file` of go test -bench output (required; repeatable, best ns/op wins)")
	outPath := flag.String("out", "-", "output JSON `file` (- for stdout)")
	note := flag.String("note", "", "free-form note recorded in the report")
	checkPath := flag.String("check", "", "recorded report `file` to check the run against instead of emitting JSON")
	tolerance := flag.Float64("tolerance", 1.25, "regression `factor` allowed by -check")
	flag.Parse()
	if len(afterPaths) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: -after is required")
		flag.Usage()
		os.Exit(2)
	}
	var err error
	if *checkPath != "" {
		err = runCheck(*checkPath, afterPaths, *tolerance)
	} else {
		err = runReport(*beforePath, afterPaths, *outPath, *note)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
