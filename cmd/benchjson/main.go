// Command benchjson converts `go test -bench` text output into a small
// machine-readable JSON report, optionally joining a baseline run to record
// before/after numbers and speedups. `make bench` uses it to produce
// BENCH_gp.json, the repository's canonical GP-inference performance record.
//
// Usage:
//
//	benchjson -after results/bench_after.txt \
//	    [-before results/bench_before.txt] [-out BENCH_gp.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Iterations int     `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
}

// Run is one parsed `go test -bench` output stream.
type Run struct {
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// Comparison joins an after result with its baseline counterpart.
type Comparison struct {
	Name        string  `json:"name"`
	BeforeNsOp  float64 `json:"before_ns_per_op,omitempty"`
	AfterNsOp   float64 `json:"after_ns_per_op"`
	Speedup     float64 `json:"speedup,omitempty"`
	BaselineCPU string  `json:"baseline_cpu,omitempty"`
}

// Report is the JSON document benchjson emits.
type Report struct {
	CPU        string       `json:"cpu,omitempty"`
	Note       string       `json:"note,omitempty"`
	Benchmarks []Comparison `json:"benchmarks"`
}

var (
	benchLine = regexp.MustCompile(`^Benchmark(\S+)\s+(\d+)\s+([0-9.]+) ns/op`)
	// gomaxprocsSuffix is the -N decoration go test appends to benchmark
	// names when GOMAXPROCS > 1; it is stripped so runs from machines with
	// different core counts join on the same name.
	gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)
)

// parseBench extracts benchmark results and the reported CPU from `go test
// -bench` output. Unrelated lines (goos, pkg, PASS, test logs) are ignored.
func parseBench(text string) Run {
	var run Run
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			run.CPU = cpu
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		run.Results = append(run.Results, Result{
			Name:       gomaxprocsSuffix.ReplaceAllString(m[1], ""),
			Iterations: iters,
			NsPerOp:    ns,
		})
	}
	return run
}

// compare joins after results against the baseline by benchmark name.
func compare(before, after Run) []Comparison {
	base := make(map[string]float64, len(before.Results))
	for _, r := range before.Results {
		base[r.Name] = r.NsPerOp
	}
	out := make([]Comparison, 0, len(after.Results))
	for _, r := range after.Results {
		c := Comparison{Name: r.Name, AfterNsOp: r.NsPerOp}
		if b, ok := base[r.Name]; ok && r.NsPerOp > 0 {
			c.BeforeNsOp = b
			c.Speedup = b / r.NsPerOp
		}
		out = append(out, c)
	}
	return out
}

func run(beforePath, afterPath, outPath, note string) error {
	afterText, err := os.ReadFile(afterPath)
	if err != nil {
		return err
	}
	after := parseBench(string(afterText))
	if len(after.Results) == 0 {
		return fmt.Errorf("no benchmark results found in %s", afterPath)
	}
	var before Run
	if beforePath != "" {
		beforeText, err := os.ReadFile(beforePath)
		if err != nil {
			return err
		}
		before = parseBench(string(beforeText))
	}
	report := Report{CPU: after.CPU, Note: note, Benchmarks: compare(before, after)}
	if before.CPU != "" && before.CPU != after.CPU {
		for i := range report.Benchmarks {
			report.Benchmarks[i].BaselineCPU = before.CPU
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" || outPath == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(outPath, data, 0o644)
}

func main() {
	beforePath := flag.String("before", "", "baseline `file` of go test -bench output (optional)")
	afterPath := flag.String("after", "", "current `file` of go test -bench output (required)")
	outPath := flag.String("out", "-", "output JSON `file` (- for stdout)")
	note := flag.String("note", "", "free-form note recorded in the report")
	flag.Parse()
	if *afterPath == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -after is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*beforePath, *afterPath, *outPath, *note); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
