// Command sweep measures the simulated prototype at a single operating
// point (or a one-dimensional sweep of one policy), printing the KPIs —
// the tool behind the §3-style measurement campaign.
//
// Usage:
//
//	sweep [-res F] [-air F] [-gpu F] [-mcs F] [-snr DB] [-users N]
//	      [-load F] [-sweep res|air|gpu|mcs] [-points N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/ran"
	"repro/internal/testbed"
)

func main() {
	res := flag.Float64("res", 1, "image resolution policy (0,1]")
	air := flag.Float64("air", 1, "airtime policy (0,1]")
	gpu := flag.Float64("gpu", 1, "GPU speed policy [0,1]")
	mcs := flag.Float64("mcs", 1, "max-MCS policy [0,1]")
	snr := flag.Float64("snr", 35, "uplink SNR in dB")
	users := flag.Int("users", 1, "number of users")
	load := flag.Float64("load", 1, "background load factor (>= 1)")
	sweepDim := flag.String("sweep", "", "sweep one dimension: res, air, gpu, or mcs")
	points := flag.Int("points", 9, "sweep points")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	cfg := testbed.DefaultConfig()
	cfg.LoadFactor = *load
	us := make([]ran.User, *users)
	for i := range us {
		us[i] = ran.User{SNRdB: *snr - 2*float64(i)}
	}
	tb, err := testbed.New(cfg, us, *seed)
	if err != nil {
		fatal(err)
	}

	base := core.Control{Resolution: *res, Airtime: *air, GPUSpeed: *gpu, MCS: *mcs}
	measure := func(x core.Control) {
		k, err := tb.Measure(x)
		if err != nil {
			fatal(err)
		}
		e, err := tb.Expected(x)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("res=%.2f air=%.2f gpu=%.2f mcs=%.2f | d=%.3fs (exp %.3f) gpu_d=%.3fs mAP=%.3f (exp %.3f) ps=%.1fW pb=%.2fW\n",
			x.Resolution, x.Airtime, x.GPUSpeed, x.MCS,
			k.Delay, e.Delay, k.GPUDelay, k.MAP, e.MAP, k.ServerPower, k.BSPower)
	}

	if *sweepDim == "" {
		measure(base)
		return
	}
	if *points < 2 {
		fatal(fmt.Errorf("need at least 2 sweep points"))
	}
	for i := 0; i < *points; i++ {
		frac := float64(i) / float64(*points-1)
		x := base
		switch *sweepDim {
		case "res":
			x.Resolution = 0.1 + 0.9*frac
		case "air":
			x.Airtime = 0.1 + 0.9*frac
		case "gpu":
			x.GPUSpeed = frac
		case "mcs":
			x.MCS = frac
		default:
			fatal(fmt.Errorf("unknown sweep dimension %q", *sweepDim))
		}
		measure(x)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
