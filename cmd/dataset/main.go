// Command dataset records a §3-style measurement campaign over the
// simulated prototype and writes it as a JSON Lines dataset — the
// counterpart of the measurement dataset the paper's authors published —
// optionally alongside a COCO-format export of one detection batch.
//
// Usage:
//
//	dataset -out measurements.jsonl [-grid N] [-reps N] [-snr DB]
//	        [-users N] [-coco DIR] [-seed N]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ran"
	"repro/internal/testbed"
	"repro/internal/vision"
)

func main() {
	out := flag.String("out", "measurements.jsonl", "output dataset path")
	gridLevels := flag.Int("grid", 5, "control-grid levels per dimension")
	reps := flag.Int("reps", 2, "repetitions per control")
	snr := flag.Float64("snr", 35, "first user's SNR in dB")
	users := flag.Int("users", 1, "number of users")
	coco := flag.String("coco", "", "directory for a COCO export of one detection batch (optional)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	us := make([]ran.User, *users)
	for i := range us {
		us[i] = ran.User{SNRdB: *snr - 2*float64(i)}
	}
	tb, err := testbed.New(testbed.DefaultConfig(), us, *seed)
	if err != nil {
		fatal(err)
	}
	grid := core.GridSpec{Levels: *gridLevels, MinResolution: 0.1, MinAirtime: 0.1}
	fmt.Printf("collecting %d controls x %d repetitions...\n", grid.Size(), *reps)
	ds, err := dataset.Collect(tb, grid, *reps)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := ds.Write(f); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d records to %s\n", len(ds.Records), *out)

	if *coco != "" {
		if err := os.MkdirAll(*coco, 0o755); err != nil {
			fatal(err)
		}
		cfg := tb.Config()
		rng := rand.New(rand.NewSource(*seed + 99))
		batch, err := vision.GenerateBatch(1.0, cfg.ImagesPerMeasurement, cfg.Scene, cfg.Detector, rng)
		if err != nil {
			fatal(err)
		}
		cocoDS, dets := vision.ExportCOCO(batch)
		dsFile, err := os.Create(filepath.Join(*coco, "annotations.json"))
		if err != nil {
			fatal(err)
		}
		defer dsFile.Close()
		detFile, err := os.Create(filepath.Join(*coco, "detections.json"))
		if err != nil {
			fatal(err)
		}
		defer detFile.Close()
		if err := vision.WriteCOCO(dsFile, detFile, cocoDS, dets); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote COCO batch (%d images, mAP %.3f) to %s\n",
			len(batch), vision.MeanAveragePrecision(batch), *coco)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
