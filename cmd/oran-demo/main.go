// Command oran-demo stands up the full Fig. 7 control plane on loopback
// TCP — non-RT RIC, near-RT RIC, E2 node, service controller — and drives
// the EdgeBOL loop across it: every control period the radio policies
// travel A1→E2, the service policies travel the custom interface, and the
// vBS KPI returns over E2→O1.
//
// Usage:
//
//	oran-demo [-periods N] [-seed N] [-metrics ADDR]
//
// With -metrics, the deployment serves /metrics and /debug/pprof on ADDR
// and one registry instruments all four layers: core (agent), gp, oran
// (control plane), and testbed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/oran"
	"repro/internal/ran"
	"repro/internal/telemetry"
	"repro/internal/testbed"
)

func main() {
	periods := flag.Int("periods", 40, "control periods to run")
	seed := flag.Int64("seed", 1, "random seed")
	metricsAddr := flag.String("metrics", "", "serve /metrics and /debug/pprof on this address (empty disables)")
	hold := flag.Duration("hold", 0, "keep the process (and the metrics endpoint) alive this long after the run")
	flag.Parse()

	var reg *telemetry.Registry
	if *metricsAddr != "" {
		reg = telemetry.NewRegistry()
	}
	tb, err := testbed.New(testbed.DefaultConfig(), []ran.User{{SNRdB: 35}}, *seed)
	if err != nil {
		fatal(err)
	}
	tb.Instrument(reg)
	dep, err := oran.Deploy(context.Background(), tb, oran.DeployOptions{
		Timeout:     5 * time.Second,
		MetricsAddr: *metricsAddr,
		Telemetry:   reg,
	})
	if err != nil {
		fatal(err)
	}
	defer dep.Close()

	fmt.Println("O-RAN loopback deployment:")
	fmt.Printf("  E2 node (vBS):        %s\n", dep.E2Node.Addr())
	fmt.Printf("  service controller:   %s\n", dep.ServiceCtl.Addr())
	fmt.Printf("  near-RT RIC (A1/O1):  %s\n", dep.NearRT.Addr())
	if addr := dep.MetricsAddr(); addr != "" {
		fmt.Printf("  metrics:              http://%s/metrics\n", addr)
	}
	fmt.Println()

	w := core.CostWeights{Delta1: 1, Delta2: 1}
	cons := core.Constraints{MaxDelay: 0.4, MinMAP: 0.5}
	agent, err := core.NewAgent(core.Options{
		Grid:        core.GridSpec{Levels: 6, MinResolution: 0.1, MinAirtime: 0.1},
		Weights:     w,
		Constraints: cons,
		Telemetry:   reg,
	})
	if err != nil {
		fatal(err)
	}

	env := dep.Env()
	for t := 0; t < *periods; t++ {
		x, k, info, err := agent.Step(env)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("t=%3d  A1 policy [air %.2f mcs %.2f] -> E2; svc [res %.2f gpu %.2f]; O1 KPI pb=%.2fW  d=%.3fs mAP=%.3f u=%.1f |S|=%d\n",
			t, x.Airtime, x.MCS, x.Resolution, x.GPUSpeed, k.BSPower, k.Delay, k.MAP, w.Cost(k), info.SafeSetSize)
	}
	fmt.Println("\ndone: all policies and KPIs traversed the loopback control plane")
	if *hold > 0 {
		// Leave the deployment (and its /metrics endpoint) up so a scraper
		// can read the finished run — the metrics-smoke gate relies on it.
		time.Sleep(*hold)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
