// Command edgebol-lint is the multichecker for EdgeBOL's domain
// analyzers. It is meant to run alongside `go vet` (the Makefile's lint
// target runs both):
//
//	go run ./cmd/edgebol-lint ./...
//
// Exit status is 0 when the run is clean, 1 when any analyzer reports a
// finding, 2 when the run itself fails (load or type-check error, bad
// flags). Individual analyzers can be selected with -run:
//
//	go run ./cmd/edgebol-lint -run floateq,safectrl ./...
//
// -format sarif emits a SARIF 2.1.0 log on stdout for CI code-scanning
// upload. -baseline <file> subtracts a committed accepted-findings set
// before deciding the exit status; -write-baseline <file> records the
// current findings as that set. The Makefile's lint-baseline target
// combines both so the baseline can only shrink: regeneration fails if
// any finding is not already accepted.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicmix"
	"repro/internal/analysis/ctxleak"
	"repro/internal/analysis/driver"
	"repro/internal/analysis/errignore"
	"repro/internal/analysis/floateq"
	"repro/internal/analysis/globalrand"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/lockhold"
	"repro/internal/analysis/nanguard"
	"repro/internal/analysis/safectrl"
)

// all registers every analyzer the suite ships.
var all = []*analysis.Analyzer{
	floateq.Analyzer,
	globalrand.Analyzer,
	errignore.Analyzer,
	safectrl.Analyzer,
	ctxleak.Analyzer,
	atomicmix.Analyzer,
	lockhold.Analyzer,
	nanguard.Analyzer,
	hotalloc.Analyzer,
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain runs the linter and returns its exit code: 0 clean, 1
// findings, 2 run failure.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("edgebol-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runList       = fs.String("run", "", "comma-separated analyzer names to run (default: all)")
		list          = fs.Bool("list", false, "list available analyzers and exit")
		format        = fs.String("format", "text", "output format: text or sarif")
		baselinePath  = fs.String("baseline", "", "baseline file of accepted findings to subtract")
		writeBaseline = fs.String("write-baseline", "", "write the current findings to this baseline file")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: edgebol-lint [-run names] [-format text|sarif] [-baseline file] [-write-baseline file] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		listAnalyzers(stdout)
		return 0
	}
	if *format != "text" && *format != "sarif" {
		fmt.Fprintf(stderr, "edgebol-lint: unknown format %q (want text or sarif)\n", *format)
		return 2
	}

	analyzers := all
	if *runList != "" {
		byName := make(map[string]*analysis.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*runList, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "edgebol-lint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	collected, err := driver.Collect(driver.Options{Patterns: patterns, Analyzers: analyzers})
	if err != nil {
		fmt.Fprintf(stderr, "edgebol-lint: %v\n", err)
		return 2
	}
	findings := collected

	if *baselinePath != "" {
		b, err := driver.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "edgebol-lint: %v\n", err)
			return 2
		}
		var suppressed int
		findings, suppressed = b.Filter(findings)
		if suppressed > 0 {
			fmt.Fprintf(stderr, "edgebol-lint: %d finding(s) suppressed by baseline %s\n", suppressed, *baselinePath)
		}
	}

	if *writeBaseline != "" {
		// With -baseline, regeneration is constrained: findings not
		// already accepted fail the run instead of being absorbed, so a
		// committed baseline can shrink but never silently grow. Without
		// -baseline this is initial adoption and records everything.
		if *baselinePath != "" && len(findings) > 0 {
			printText(stderr, findings)
			fmt.Fprintf(stderr, "edgebol-lint: refusing to write baseline %s: %d finding(s) not in baseline %s — fix or waive them first\n", *writeBaseline, len(findings), *baselinePath)
			return 1
		}
		if err := driver.WriteBaselineFile(*writeBaseline, collected); err != nil {
			fmt.Fprintf(stderr, "edgebol-lint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "edgebol-lint: wrote baseline %s (%d accepted finding(s))\n", *writeBaseline, len(collected))
		return 0
	}

	switch *format {
	case "sarif":
		if err := driver.WriteSARIF(stdout, analyzers, findings); err != nil {
			fmt.Fprintf(stderr, "edgebol-lint: %v\n", err)
			return 2
		}
	default:
		printText(stdout, findings)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// listAnalyzers prints a stable name-sorted table of the registered
// analyzers.
func listAnalyzers(w io.Writer) {
	sorted := make([]*analysis.Analyzer, len(all))
	copy(sorted, all)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	width := 0
	for _, a := range sorted {
		if len(a.Name) > width {
			width = len(a.Name)
		}
	}
	for _, a := range sorted {
		fmt.Fprintf(w, "%-*s  %s\n", width, a.Name, a.Doc)
	}
}

// printText writes one classic "file:line:col: analyzer: message" line
// per finding.
func printText(w io.Writer, findings []driver.Finding) {
	for _, f := range findings {
		fmt.Fprintln(w, f)
	}
}
