// Command edgebol-lint is the multichecker for EdgeBOL's domain
// analyzers: floateq, globalrand, errignore, and safectrl. It is meant
// to run alongside `go vet` (the Makefile's lint target runs both):
//
//	go run ./cmd/edgebol-lint ./...
//
// Exit status is 1 when any analyzer reports a finding, 2 when the run
// itself fails (load or type-check error). Individual analyzers can be
// selected with -run:
//
//	go run ./cmd/edgebol-lint -run floateq,safectrl ./...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/driver"
	"repro/internal/analysis/errignore"
	"repro/internal/analysis/floateq"
	"repro/internal/analysis/globalrand"
	"repro/internal/analysis/safectrl"
)

// all registers every analyzer the suite ships.
var all = []*analysis.Analyzer{
	floateq.Analyzer,
	globalrand.Analyzer,
	errignore.Analyzer,
	safectrl.Analyzer,
}

func main() {
	var (
		runList = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		list    = flag.Bool("list", false, "list available analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: edgebol-lint [-run names] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *runList != "" {
		byName := make(map[string]*analysis.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*runList, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "edgebol-lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	n, err := driver.Run(driver.Options{Patterns: patterns, Analyzers: analyzers}, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edgebol-lint: %v\n", err)
		os.Exit(2)
	}
	if n > 0 {
		os.Exit(1)
	}
}
