package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func run(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = realMain(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestListGolden(t *testing.T) {
	code, stdout, _ := run(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "list.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if stdout != string(golden) {
		t.Errorf("-list output differs from testdata/list.golden:\ngot:\n%s\nwant:\n%s", stdout, golden)
	}
}

func TestListIsSorted(t *testing.T) {
	_, stdout, _ := run(t, "-list")
	lines := strings.Split(strings.TrimRight(stdout, "\n"), "\n")
	if len(lines) != len(all) {
		t.Fatalf("-list printed %d lines, want %d (one per analyzer)", len(lines), len(all))
	}
	names := make([]string, len(lines))
	for i, l := range lines {
		names[i] = strings.Fields(l)[0]
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("-list names not sorted: %v", names)
	}
}

func TestExitZeroOnCleanRun(t *testing.T) {
	code, stdout, stderr := run(t, "-run", "floateq", "repro/internal/telemetry")
	if code != 0 {
		t.Fatalf("clean run exit = %d, want 0 (stdout=%q stderr=%q)", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run stdout = %q, want empty", stdout)
	}
}

func TestExitTwoOnBadInvocation(t *testing.T) {
	for _, args := range [][]string{
		{"-run", "nosuchanalyzer", "./..."},
		{"-format", "xml", "./..."},
		{"repro/does/not/exist"},
	} {
		code, _, stderr := run(t, args...)
		if code != 2 {
			t.Errorf("args %v: exit = %d, want 2 (stderr=%q)", args, code, stderr)
		}
	}
}

func TestSARIFOutput(t *testing.T) {
	code, stdout, stderr := run(t, "-format", "sarif", "-run", "floateq", "repro/internal/telemetry")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr=%q)", code, stderr)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout), &log); err != nil {
		t.Fatalf("sarif output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version=%q runs=%d, want 2.1.0 / 1", log.Version, len(log.Runs))
	}
	if len(log.Runs[0].Tool.Driver.Rules) != 1 || log.Runs[0].Tool.Driver.Rules[0].ID != "floateq" {
		t.Errorf("rules = %+v, want exactly [floateq]", log.Runs[0].Tool.Driver.Rules)
	}
	if len(log.Runs[0].Results) != 0 {
		t.Errorf("results = %d, want 0 on a clean run", len(log.Runs[0].Results))
	}
}

// tempModule creates a separate module with one globalrand violation and
// chdirs into it, so findings and exit code 1 can be exercised without
// dirtying this repository.
func tempModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module tmplint\n\ngo 1.21\n")
	// A library package: globalrand exempts package main.
	writeFile(t, filepath.Join(dir, "lib.go"), `package tmplint

import "math/rand"

func Roll() int { return rand.Intn(5) }
`)
	// Manual chdir: go.mod pins go 1.22, which predates t.Chdir.
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(wd); err != nil {
			t.Errorf("restoring working directory: %v", err)
		}
	})
	return dir
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestExitOneOnFindings(t *testing.T) {
	tempModule(t)
	code, stdout, stderr := run(t, "-run", "globalrand", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stdout=%q stderr=%q)", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "globalrand") || !strings.Contains(stdout, "lib.go") {
		t.Errorf("stdout = %q, want a globalrand finding in lib.go", stdout)
	}
}

func TestBaselineLifecycle(t *testing.T) {
	dir := tempModule(t)
	bl := filepath.Join(dir, "baseline.json")

	// Initial adoption: -write-baseline without -baseline records the
	// live finding and exits 0.
	code, _, stderr := run(t, "-run", "globalrand", "-write-baseline", bl, "./...")
	if code != 0 {
		t.Fatalf("initial -write-baseline exit = %d, want 0 (stderr=%q)", code, stderr)
	}
	if !strings.Contains(stderr, "wrote baseline") {
		t.Errorf("stderr = %q, want wrote-baseline notice", stderr)
	}

	// With the baseline, the same run is clean.
	code, stdout, stderr := run(t, "-run", "globalrand", "-baseline", bl, "./...")
	if code != 0 {
		t.Fatalf("baselined run exit = %d, want 0 (stdout=%q stderr=%q)", code, stdout, stderr)
	}
	if !strings.Contains(stderr, "suppressed by baseline") {
		t.Errorf("stderr = %q, want suppression notice", stderr)
	}

	// Constrained regeneration with no new findings succeeds.
	if code, _, stderr = run(t, "-run", "globalrand", "-baseline", bl, "-write-baseline", bl, "./..."); code != 0 {
		t.Fatalf("regeneration exit = %d, want 0 (stderr=%q)", code, stderr)
	}

	// A new violation in another file is not absorbed: the plain run
	// fails, and so does regeneration (the baseline may only shrink).
	writeFile(t, filepath.Join(dir, "extra.go"), `package tmplint

import "math/rand"

func Extra() float64 { return rand.Float64() }
`)
	if code, _, _ = run(t, "-run", "globalrand", "-baseline", bl, "./..."); code != 1 {
		t.Fatalf("run with new finding exit = %d, want 1", code)
	}
	before, err := os.ReadFile(bl)
	if err != nil {
		t.Fatal(err)
	}
	code, _, stderr = run(t, "-run", "globalrand", "-baseline", bl, "-write-baseline", bl, "./...")
	if code != 1 {
		t.Fatalf("regeneration with new finding exit = %d, want 1 (stderr=%q)", code, stderr)
	}
	if !strings.Contains(stderr, "refusing to write baseline") {
		t.Errorf("stderr = %q, want refusal notice", stderr)
	}
	after, err := os.ReadFile(bl)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("failed regeneration modified the baseline file")
	}

	// Fixing the original violation shrinks the baseline to empty on the
	// next regeneration.
	writeFile(t, filepath.Join(dir, "lib.go"), `package tmplint

func Roll() int { return 4 }
`)
	if err := os.Remove(filepath.Join(dir, "extra.go")); err != nil {
		t.Fatal(err)
	}
	if code, _, stderr = run(t, "-run", "globalrand", "-baseline", bl, "-write-baseline", bl, "./..."); code != 0 {
		t.Fatalf("post-fix regeneration exit = %d, want 0 (stderr=%q)", code, stderr)
	}
	data, err := os.ReadFile(bl)
	if err != nil {
		t.Fatal(err)
	}
	var b struct {
		Findings []json.RawMessage `json:"findings"`
	}
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 0 {
		t.Errorf("baseline has %d entries after fix, want 0 (monotonic shrink)", len(b.Findings))
	}
}
