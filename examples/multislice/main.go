// Multi-slice: two edge AI services on pre-configured network slices
// (§4.4). A surveillance service and an industrial-inspection service
// share the carrier and the GPU through static partitions; one EdgeBOL
// agent per slice optimizes its own cost under its own constraints, the
// architecture the paper argues keeps the problem tractable as services
// multiply.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/multislice"
	"repro/internal/ran"
	"repro/internal/testbed"
)

func main() {
	slices := []multislice.SliceConfig{
		{
			Name:          "surveillance", // latency-critical, accuracy-focused
			AirtimeBudget: 0.6,
			GPUShare:      0.6,
			Users:         []ran.User{{SNRdB: 35}},
			Weights:       core.CostWeights{Delta1: 1, Delta2: 1},
			Constraints:   core.Constraints{MaxDelay: 0.6, MinMAP: 0.5},
		},
		{
			Name:          "inspection", // tolerant of delay, radio-cost sensitive
			AirtimeBudget: 0.4,
			GPUShare:      0.4,
			Users:         []ran.User{{SNRdB: 30}},
			Weights:       core.CostWeights{Delta1: 1, Delta2: 4},
			Constraints:   core.Constraints{MaxDelay: 1.0, MinMAP: 0.4},
		},
	}
	sys, err := multislice.New(testbed.DefaultConfig(),
		core.GridSpec{Levels: 6, MinResolution: 0.1, MinAirtime: 0.1}, slices, 1)
	if err != nil {
		log.Fatal(err)
	}

	for t := 0; t < 100; t++ {
		results, err := sys.Step()
		if err != nil {
			log.Fatal(err)
		}
		if t%20 == 19 {
			fmt.Printf("t=%3d total cost %.1f mu\n", t, multislice.TotalCost(results, sys.Slices))
			for _, r := range results {
				fmt.Printf("   %-13s res %.2f air(rel) %.2f gpu %.2f | d=%3.0f ms mAP %.2f\n",
					r.Slice, r.Control.Resolution, r.Control.Airtime, r.Control.GPUSpeed,
					1000*r.KPIs.Delay, r.KPIs.MAP)
			}
		}
	}
	fmt.Println("\neach slice's agent stays four-dimensional no matter how many")
	fmt.Println("services share the machine room — the §4.4 scalability argument")
}
