// Custom service: plug your own data plane into EdgeBOL.
//
// The agent only needs a core.Environment — anything that reports a
// context and measures KPIs under a control. This example models a
// *different* edge AI service (a speech-to-text pipeline with its own
// latency/accuracy/power trade-offs) and lets EdgeBOL optimize it with
// tighter accuracy and looser delay requirements, demonstrating the §4.3
// point that alternative formulations drop in with minimal changes.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/core"
)

// speechEnv is a synthetic speech-recognition service: "resolution" plays
// the role of audio bitrate, GPU speed of the acoustic-model batch rate.
type speechEnv struct {
	rng *rand.Rand
}

func (s *speechEnv) Context() core.Context {
	return core.Context{NumUsers: 1, MeanCQI: 12, VarCQI: 0}
}

func (s *speechEnv) Measure(x core.Control) (core.KPIs, error) {
	if err := x.Validate(); err != nil {
		return core.KPIs{}, err
	}
	// Word accuracy saturates with bitrate; latency is dominated by the
	// acoustic model; power by the accelerator duty cycle.
	accuracy := 0.55 + 0.4*(1-math.Exp(-3*x.Resolution))
	delay := 0.05 + 0.3*x.Resolution/(0.3+0.7*x.GPUSpeed) + 0.2*(1-x.Airtime)
	server := 45 + 90*x.GPUSpeed + 15*x.Resolution
	bs := 4.5 + 2*x.Airtime
	k := core.KPIs{
		Delay:       delay * (1 + 0.03*s.rng.NormFloat64()),
		MAP:         clamp01(accuracy + 0.01*s.rng.NormFloat64()),
		ServerPower: server + s.rng.NormFloat64(),
		BSPower:     bs + 0.05*s.rng.NormFloat64(),
	}
	return k, nil
}

func clamp01(v float64) float64 { return math.Max(0, math.Min(1, v)) }

func main() {
	env := &speechEnv{rng: rand.New(rand.NewSource(3))}
	agent, err := core.NewAgent(core.Options{
		Grid:        core.GridSpec{Levels: 6, MinResolution: 0.1, MinAirtime: 0.1},
		Weights:     core.CostWeights{Delta1: 1, Delta2: 2},
		Constraints: core.Constraints{MaxDelay: 0.35, MinMAP: 0.85},
		// The default normalization is calibrated to the video-analytics
		// testbed; a custom service provides its own envelopes.
		Norm: core.Normalization{
			Cost:  core.Affine{Center: 110, Scale: 30},
			Delay: core.Affine{Center: 0.25, Scale: 0.08},
			MAP:   core.Affine{Center: 0.85, Scale: 0.08},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	var last core.KPIs
	var lastX core.Control
	for t := 0; t < 120; t++ {
		lastX, last, _, err = agent.Step(env)
		if err != nil {
			log.Fatal(err)
		}
		if t%20 == 0 {
			fmt.Printf("t=%3d cost=%.1f delay=%3.0f ms accuracy=%.3f\n",
				t, agent.Weights().Cost(last), 1000*last.Delay, last.MAP)
		}
	}
	fmt.Printf("\nconverged: bitrate %.0f%%, airtime %.0f%%, accel speed %.0f%% | %.0f ms, accuracy %.3f\n",
		100*lastX.Resolution, 100*lastX.Airtime, 100*lastX.GPUSpeed, 1000*last.Delay, last.MAP)
}
