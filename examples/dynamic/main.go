// Dynamic contexts: an untrained EdgeBOL agent under fast channel
// dynamics (the §6.5 scenario). The SNR wanders between 5 and 38 dB; the
// agent transfers knowledge across similar contexts and keeps adapting its
// policies without retraining.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/ran"
	"repro/internal/testbed"
)

// dynamicEnv couples the testbed to an SNR trace: each period starts by
// observing a fresh channel state.
type dynamicEnv struct {
	tb    *testbed.Testbed
	trace *ran.SNRTrace
	snr   float64
}

func (d *dynamicEnv) Context() core.Context {
	d.snr = d.trace.Next()
	d.tb.SetSNR(d.snr)
	return d.tb.Context()
}

func (d *dynamicEnv) Measure(x core.Control) (core.KPIs, error) { return d.tb.Measure(x) }

func main() {
	tb, err := testbed.New(testbed.DefaultConfig(), []ran.User{{SNRdB: 35}}, 1)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := ran.NewSNRTrace(5, 38, 12, 5, rand.New(rand.NewSource(2)))
	if err != nil {
		log.Fatal(err)
	}
	env := &dynamicEnv{tb: tb, trace: trace}

	agent, err := core.NewAgent(core.Options{
		Grid:        core.GridSpec{Levels: 6, MinResolution: 0.1, MinAirtime: 0.1},
		Weights:     core.CostWeights{Delta1: 1, Delta2: 8},
		Constraints: core.Constraints{MaxDelay: 0.4, MinMAP: 0.5},
	})
	if err != nil {
		log.Fatal(err)
	}

	for t := 0; t < 120; t++ {
		x, k, info, err := agent.Step(env)
		if err != nil {
			log.Fatal(err)
		}
		if t%8 == 0 {
			fmt.Printf("t=%3d snr=%5.1f dB (cqi %2.0f) | res %.2f air %.2f gpu %.2f mcs %.2f | d=%3.0f ms mAP %.2f |S|=%d\n",
				t, env.snr, env.tb.Context().MeanCQI,
				x.Resolution, x.Airtime, x.GPUSpeed, x.MCS,
				1000*k.Delay, k.MAP, info.SafeSetSize)
		}
	}
	fmt.Println("\nthe safe set and policies track the channel: low SNR shrinks the")
	fmt.Println("feasible region (sometimes to S0), high SNR lets the agent save power")
}
