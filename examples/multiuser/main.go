// Multi-user: EdgeBOL with a heterogeneous user population (§6.4).
// The context aggregates per-user channel quality into (count, mean CQI,
// var CQI); the service constraints bind on the worst user. The learned
// cost is compared against the exhaustive-search oracle.
package main

import (
	"fmt"
	"log"

	"repro/internal/bandit"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/testbed"
)

func main() {
	grid := core.GridSpec{Levels: 6, MinResolution: 0.1, MinAirtime: 0.1}
	w := core.CostWeights{Delta1: 1, Delta2: 4}
	cons := core.Constraints{MaxDelay: 2, MinMAP: 0.6}

	for _, n := range []int{2, 4, 6} {
		tb, err := testbed.New(testbed.DefaultConfig(), testbed.HeterogeneousUsers(n), int64(n))
		if err != nil {
			log.Fatal(err)
		}
		ctx := tb.Context()
		agent, err := core.NewAgent(core.Options{Grid: grid, Weights: w, Constraints: cons})
		if err != nil {
			log.Fatal(err)
		}
		// Train first, as §6.4 does, then evaluate the converged tail.
		var tail []float64
		for t := 0; t < 300; t++ {
			_, k, _, err := agent.Step(tb)
			if err != nil {
				log.Fatal(err)
			}
			if t >= 270 {
				tail = append(tail, w.Cost(k))
			}
		}
		_, oracle, err := bandit.Oracle(tb.Expected, grid, w, cons)
		if err != nil {
			log.Fatal(err)
		}
		got := experiment.Median(tail)
		fmt.Printf("users=%d (mean CQI %.1f, var %.1f): EdgeBOL %.1f mu, oracle %.1f mu, gap %.1f%%\n",
			n, ctx.MeanCQI, ctx.VarCQI, got, oracle, 100*(got-oracle)/oracle)
	}
}
