// O-RAN loop: run EdgeBOL across the real loopback control plane.
//
// Unlike the quickstart (which calls the testbed in-process), every control
// period here performs the full Fig. 7 round trip over TCP: the rApp pushes
// the radio policies through A1 to the near-RT RIC, whose xApp enforces
// them on the E2 node; the service policies travel the custom interface to
// the service controller; and the vBS power KPI returns over E2 and O1.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/oran"
	"repro/internal/ran"
	"repro/internal/testbed"
)

func main() {
	tb, err := testbed.New(testbed.DefaultConfig(), []ran.User{{SNRdB: 35}}, 1)
	if err != nil {
		log.Fatal(err)
	}
	dep, err := oran.Deploy(context.Background(), tb, oran.DeployOptions{Timeout: 5 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()
	fmt.Printf("control plane up: E2 %s, near-RT RIC %s, service ctl %s\n\n",
		dep.E2Node.Addr(), dep.NearRT.Addr(), dep.ServiceCtl.Addr())

	agent, err := core.NewAgent(core.Options{
		Grid:        core.GridSpec{Levels: 6, MinResolution: 0.1, MinAirtime: 0.1},
		Weights:     core.CostWeights{Delta1: 1, Delta2: 1},
		Constraints: core.Constraints{MaxDelay: 0.4, MinMAP: 0.5},
	})
	if err != nil {
		log.Fatal(err)
	}

	env := dep.Env()
	start := time.Now()
	for t := 0; t < 60; t++ {
		x, k, _, err := agent.Step(env)
		if err != nil {
			log.Fatal(err)
		}
		if t%10 == 0 {
			fmt.Printf("t=%3d via A1/E2/O1: res %.2f air %.2f gpu %.2f mcs %.2f -> cost %.1f mu, delay %.0f ms\n",
				t, x.Resolution, x.Airtime, x.GPUSpeed, x.MCS, agent.Weights().Cost(k), 1000*k.Delay)
		}
	}
	fmt.Printf("\n60 periods in %s including all control-plane round trips\n", time.Since(start).Round(time.Millisecond))
}
