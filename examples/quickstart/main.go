// Quickstart: minimize the energy cost of a mobile-edge video-analytics
// service under delay and accuracy constraints with EdgeBOL.
//
// This is the smallest complete use of the library: build the simulated
// prototype (one user, good channel), build an agent, run the online loop,
// and read off the learned operating point.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ran"
	"repro/internal/testbed"
)

func main() {
	// The environment: a vBS + GPU edge server serving one user at 35 dB.
	tb, err := testbed.New(testbed.DefaultConfig(), []ran.User{{SNRdB: 35}}, 1)
	if err != nil {
		log.Fatal(err)
	}

	// The objective: minimize δ₁·serverPower + δ₂·bsPower subject to
	// delay ≤ 400 ms and mAP ≥ 0.5.
	agent, err := core.NewAgent(core.Options{
		Grid:        core.GridSpec{Levels: 7, MinResolution: 0.1, MinAirtime: 0.1},
		Weights:     core.CostWeights{Delta1: 1, Delta2: 1},
		Constraints: core.Constraints{MaxDelay: 0.4, MinMAP: 0.5},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The online loop: one Step per control period.
	var x core.Control
	var k core.KPIs
	for t := 0; t < 100; t++ {
		x, k, _, err = agent.Step(tb)
		if err != nil {
			log.Fatal(err)
		}
		if t%20 == 0 {
			fmt.Printf("t=%3d: cost %.1f mu, delay %.0f ms, mAP %.2f\n",
				t, agent.Weights().Cost(k), 1000*k.Delay, k.MAP)
		}
	}

	fmt.Printf("\nlearned operating point after %d periods:\n", agent.Observations())
	fmt.Printf("  image resolution %.0f%%, airtime %.0f%%, GPU speed %.0f%%, max MCS %d\n",
		100*x.Resolution, 100*x.Airtime, 100*x.GPUSpeed, x.MCSCap())
	fmt.Printf("  delay %.0f ms (limit 400), mAP %.2f (floor 0.5), power %.1f + %.1f W\n",
		1000*k.Delay, k.MAP, k.ServerPower, k.BSPower)
}
