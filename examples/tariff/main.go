// Tariff: EdgeBOL following day/night energy prices (§4.3).
//
// The vBS runs on a metered supply whose price quadruples during the day.
// With decomposed-cost mode the agent learns the two power surfaces once
// and re-weights them as the tariff changes — no relearning, the shift in
// the optimal policy is immediate.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/ran"
	"repro/internal/testbed"
)

func main() {
	tb, err := testbed.New(testbed.DefaultConfig(), []ran.User{{SNRdB: 35}}, 1)
	if err != nil {
		log.Fatal(err)
	}
	// δ₂ follows the tariff: expensive vBS energy by day, cheap by night.
	tariff, err := power.NewTariff(32, 2, 80, 20, 60)
	if err != nil {
		log.Fatal(err)
	}
	agent, err := core.NewAgent(core.Options{
		Grid:           core.GridSpec{Levels: 6, MinResolution: 0.1, MinAirtime: 0.1},
		Weights:        core.CostWeights{Delta1: 1, Delta2: tariff.Rate(0)},
		Constraints:    core.Constraints{MaxDelay: 0.4, MinMAP: 0.5},
		DecomposedCost: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	for t := 0; t < 240; t++ {
		w := core.CostWeights{Delta1: 1, Delta2: tariff.Rate(t)}
		if w != agent.Weights() {
			if err := agent.SetWeights(w); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("t=%3d tariff change: δ₂ -> %.0f mu/W\n", t, w.Delta2)
		}
		x, k, _, err := agent.Step(tb)
		if err != nil {
			log.Fatal(err)
		}
		if t%20 == 19 {
			phase := "night"
			if tariff.IsDay(t) {
				phase = "day"
			}
			fmt.Printf("t=%3d (%5s δ₂=%2.0f) air %.2f mcs %.2f gpu %.2f | pb=%.2fW ps=%.0fW cost=%.0f mu\n",
				t, phase, agent.Weights().Delta2, x.Airtime, x.MCS, x.GPUSpeed, k.BSPower, k.ServerPower, agent.Weights().Cost(k))
		}
	}
	fmt.Println("\nthe acquisition re-weights the already-learned power surfaces the")
	fmt.Println("moment the tariff changes — no relearning phase after each switch")
}
