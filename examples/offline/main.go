// Offline: learn from a recorded measurement campaign instead of a live
// testbed. The paper's authors published their §3 measurement dataset for
// reproducibility; this example records the equivalent campaign, then
// trains EdgeBOL purely against the replayed records.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ran"
	"repro/internal/testbed"
)

func main() {
	// Phase 1: the measurement campaign (in the paper: days of testbed
	// time; here: the simulated prototype).
	tb, err := testbed.New(testbed.DefaultConfig(), []ran.User{{SNRdB: 35}}, 1)
	if err != nil {
		log.Fatal(err)
	}
	grid := core.GridSpec{Levels: 5, MinResolution: 0.1, MinAirtime: 0.1}
	ds, err := dataset.Collect(tb, grid, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d measurements over %d controls\n\n", len(ds.Records), grid.Size())

	// Phase 2: offline learning on the records alone.
	env, err := dataset.NewReplayEnvironment(ds, rand.New(rand.NewSource(2)))
	if err != nil {
		log.Fatal(err)
	}
	w := core.CostWeights{Delta1: 1, Delta2: 1}
	agent, err := core.NewAgent(core.Options{
		Grid:        grid,
		Weights:     w,
		Constraints: core.Constraints{MaxDelay: 0.4, MinMAP: 0.5},
	})
	if err != nil {
		log.Fatal(err)
	}
	for t := 0; t < 80; t++ {
		x, k, _, err := agent.Step(env)
		if err != nil {
			log.Fatal(err)
		}
		if t%16 == 15 {
			fmt.Printf("t=%2d res %.2f air %.2f gpu %.2f mcs %.2f | cost %.1f mu, delay %3.0f ms, mAP %.2f\n",
				t, x.Resolution, x.Airtime, x.GPUSpeed, x.MCS, w.Cost(k), 1000*k.Delay, k.MAP)
		}
	}
	fmt.Println("\nthe agent never touched the testbed after the campaign — every")
	fmt.Println("observation above was replayed from the recorded dataset")
}
