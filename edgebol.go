// Package edgebol is the public API of this reproduction of "EdgeBOL:
// Automating Energy-savings for Mobile Edge AI" (Ayala-Romero,
// Garcia-Saavedra, Costa-Perez, Iosifidis — CoNEXT 2021).
//
// EdgeBOL is a contextual safe Bayesian online-learning controller that
// jointly configures a virtualized base station (airtime and max-MCS radio
// policies) and a GPU edge AI service (image resolution and GPU speed) to
// minimize energy cost under service-level delay and accuracy constraints.
//
// The package re-exports the library's building blocks:
//
//   - the learning agent (Agent, Options, Algorithm 1 of the paper),
//   - the problem vocabulary (Context, Control, KPIs, Constraints,
//     CostWeights),
//   - the simulated prototype (Testbed) standing in for the paper's
//     srsRAN + USRP + RTX 2080 Ti testbed,
//   - the O-RAN control plane (Deploy) for driving the loop over real
//     loopback TCP interfaces,
//   - fleet-scale orchestration (NewFleet) — many cells, each with its
//     own agent and control plane, with cross-cell GP warm starts for
//     joining cells (WarmStart),
//   - the telemetry subsystem (Registry, PeriodRecord, Snapshot) that
//     instruments all of the above,
//   - the benchmark controllers (DDPG, Oracle) of the paper's evaluation,
//   - and the experiment harness that regenerates every figure.
//
// Quickstart:
//
//	tb, _ := edgebol.NewTestbed(edgebol.DefaultTestbedConfig(),
//		[]edgebol.User{{SNRdB: 35}}, 1)
//	reg := edgebol.NewRegistry() // optional; nil disables telemetry
//	tb.Instrument(reg)
//	agent, _ := edgebol.NewAgent(edgebol.Options{
//		Grid:        edgebol.DefaultGridSpec(),
//		Weights:     edgebol.CostWeights{Delta1: 1, Delta2: 1},
//		Constraints: edgebol.Constraints{MaxDelay: 0.4, MinMAP: 0.5},
//		Telemetry:   reg,
//	})
//	for t := 0; t < 150; t++ {
//		x, kpis, info, err := agent.Step(tb)
//		...
//	}
//	for _, rec := range reg.Periods() { // one PeriodRecord per period
//		fmt.Println(rec.Period, rec.Cost, rec.SafeSetSize)
//	}
//
// See examples/ for complete programs and DESIGN.md for the system map.
package edgebol

import (
	"context"
	"io"

	"repro/internal/bandit"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/fleet"
	"repro/internal/multislice"
	"repro/internal/oran"
	"repro/internal/ran"
	"repro/internal/telemetry"
	"repro/internal/testbed"
)

// Problem vocabulary (§4 of the paper).
type (
	// Context is the slice state c_t = [users, mean CQI, var CQI].
	Context = core.Context
	// Control is the joint policy x_t = [resolution, airtime, GPU speed,
	// max MCS].
	Control = core.Control
	// KPIs are the per-period performance-indicator observations.
	KPIs = core.KPIs
	// Constraints are the service requirements (d^max, ρ^min) of eq. 2.
	Constraints = core.Constraints
	// CostWeights are the energy prices (δ₁, δ₂) of eq. 1.
	CostWeights = core.CostWeights
	// Environment is the data plane the agent drives.
	Environment = core.Environment
)

// Learning agent (§5, Algorithm 1).
type (
	// Agent is the EdgeBOL learner.
	Agent = core.Agent
	// Options configure an Agent.
	Options = core.Options
	// GridSpec defines the discrete control space X.
	GridSpec = core.GridSpec
	// SelectionInfo carries per-period acquisition diagnostics.
	SelectionInfo = core.SelectionInfo
	// Normalization maps raw KPIs into GP working units.
	Normalization = core.Normalization
	// Affine is one normalization transform.
	Affine = core.Affine
	// EngineSelector picks the GP inference engine (Options.Engine).
	EngineSelector = core.EngineSelector
	// AcquisitionRule selects the selection formula (Options.Rule).
	AcquisitionRule = core.AcquisitionRule
	// AcquisitionMode selects the acquisition engine — exhaustive sweep
	// or coarse-to-fine adaptive search (Options.Acquisition).
	AcquisitionMode = core.AcquisitionMode
)

// GP inference engines: the exact posterior (the default, bitwise-stable
// story), the sparse inducing-point engine with per-period cost flat in
// the history length, and auto (exact until Options.SparseSwitchAt
// observations, sparse after). See DESIGN.md §12.
const (
	EngineExact  = core.EngineExact
	EngineSparse = core.EngineSparse
	EngineAuto   = core.EngineAuto
)

// Acquisition rules (§5): the paper's constrained LCB and the
// SafeOpt-style alternative it rejected.
const (
	AcquisitionLCB     = core.AcquisitionLCB
	AcquisitionSafeOpt = core.AcquisitionSafeOpt
)

// Acquisition engines (DESIGN.md §14): auto picks the exhaustive sweep on
// grids up to the paper's scale and the adaptive coarse-to-fine engine on
// the larger spaces the split-inference dimension opens up.
const (
	AcqAuto       = core.AcqAuto
	AcqExhaustive = core.AcqExhaustive
	AcqAdaptive   = core.AcqAdaptive
)

// Offline hyperparameter fitting (§5 "Kernel selection").
type (
	// PretrainOptions configure the offline fitting phase.
	PretrainOptions = core.PretrainOptions
	// PretrainResult holds per-objective fitted hyperparameters.
	PretrainResult = core.PretrainResult
)

// NewAgent builds an EdgeBOL agent.
func NewAgent(opts Options) (*Agent, error) { return core.NewAgent(opts) }

// Pretrain fits per-objective GP hyperparameters on prior data collected
// with random controls, the paper's offline phase; apply the result to
// Options before NewAgent.
func Pretrain(env Environment, grid GridSpec, w CostWeights, opts PretrainOptions, seed int64) (PretrainResult, error) {
	return core.Pretrain(env, grid, w, opts, seed)
}

// DefaultGridSpec returns the paper's 11-level control grid.
func DefaultGridSpec() GridSpec { return core.DefaultGridSpec() }

// DefaultNormalization returns KPI normalization matched to the testbed.
func DefaultNormalization(w CostWeights) Normalization { return core.DefaultNormalization(w) }

// Simulated prototype (§6.1).
type (
	// Testbed is the simulated vBS + edge-server prototype.
	Testbed = testbed.Testbed
	// TestbedConfig parameterizes the simulation.
	TestbedConfig = testbed.Config
	// User is one UE attached to the slice.
	User = ran.User
)

// NewTestbed builds the simulated prototype.
func NewTestbed(cfg TestbedConfig, users []User, seed int64) (*Testbed, error) {
	return testbed.New(cfg, users, seed)
}

// DefaultTestbedConfig returns the calibrated prototype model.
func DefaultTestbedConfig() TestbedConfig { return testbed.DefaultConfig() }

// HeterogeneousUsers returns the §6.4 multi-user population.
func HeterogeneousUsers(n int) []User { return testbed.HeterogeneousUsers(n) }

// Benchmarks (§6.3–§6.5).
type (
	// DDPG is the actor-critic baseline of the Fig. 14 comparison.
	DDPG = bandit.DDPG
	// DDPGOptions configure the baseline.
	DDPGOptions = bandit.DDPGOptions
	// BenchmarkPolicy is the common select/observe interface of baselines.
	BenchmarkPolicy = bandit.Policy
)

// NewDDPG builds the DDPG baseline.
func NewDDPG(opts DDPGOptions) (*DDPG, error) { return bandit.NewDDPG(opts) }

// Oracle exhaustively searches the noise-free surface for the cheapest
// feasible control (the paper's offline benchmark).
func Oracle(expected bandit.ExpectedFn, grid GridSpec, w CostWeights, cons Constraints) (Control, float64, error) {
	return bandit.Oracle(expected, grid, w, cons)
}

// Telemetry (runtime observability of the whole loop).
type (
	// Registry collects counters, gauges, histograms, and the per-period
	// event stream; it is the one handle shared across layers. All methods
	// are safe on a nil *Registry, which disables telemetry at zero cost.
	Registry = telemetry.Registry
	// PeriodRecord is one control period's full structured trace: context,
	// control, KPIs, cost, safe-set diagnostics, per-objective posterior at
	// the chosen control, GP training-set size, and sweep latency.
	PeriodRecord = telemetry.PeriodRecord
	// Snapshot is a point-in-time copy of every metric in a Registry.
	Snapshot = telemetry.Snapshot
)

// NewRegistry returns an empty telemetry registry; attach it via
// Options.Telemetry, Testbed.Instrument, and DeployOptions.Telemetry so
// one registry carries core, gp, oran, and testbed metrics together.
func NewRegistry() *Registry { return telemetry.NewRegistry() }

// Checkpointing (warm restart of learned state).
type (
	// CheckpointInfo summarizes a snapshot file without restoring it:
	// format version, period counter, cost mode, and per-objective GP
	// training-set sizes.
	CheckpointInfo = core.CheckpointInfo
	// ObjectiveSize is one objective's entry in CheckpointInfo.
	ObjectiveSize = core.ObjectiveSize
	// ErrInvalidReconfig is the typed error SetConstraints/SetWeights
	// return, carrying the offending field.
	ErrInvalidReconfig = core.ErrInvalidReconfig
	// Checkpointer commits periodic snapshots into a directory with
	// crash-safe write-then-rename semantics (see DeployOptions.CheckpointDir).
	Checkpointer = oran.Checkpointer
)

// ErrCheckpointMismatch marks a checkpoint whose fixed configuration
// (grid, kernels, acquisition, normalization, ...) disagrees with the
// Options passed to LoadCheckpoint. Test with errors.Is.
var ErrCheckpointMismatch = core.ErrCheckpointMismatch

// SaveCheckpoint serializes the agent's full learned state — every GP's
// training rows and factorization, the safe set, and the period counter —
// into the versioned, CRC-protected snapshot format (see DESIGN.md §11).
func SaveCheckpoint(a *Agent, w io.Writer) error { return a.SaveCheckpoint(w) }

// LoadCheckpoint reconstructs an agent from a snapshot written by
// SaveCheckpoint. opts must carry the same fixed configuration the saved
// agent was built with; the restore is bitwise lossless, so the resumed
// agent's selections and posteriors are identical to those of an agent
// that was never interrupted.
func LoadCheckpoint(r io.Reader, opts Options) (*Agent, error) {
	return core.LoadCheckpoint(r, opts)
}

// ReadCheckpointInfo inspects a snapshot without building an agent.
func ReadCheckpointInfo(r io.Reader) (CheckpointInfo, error) {
	return core.ReadCheckpointInfo(r)
}

// O-RAN control plane (Fig. 7).
type (
	// Deployment is the loopback A1/E2/O1 stack.
	Deployment = oran.Deployment
	// DeployOptions configure Deploy: request timeout, optional /metrics +
	// /debug/pprof listen address, and the telemetry registry.
	DeployOptions = oran.DeployOptions
)

// Deploy stands up the control plane around an environment, scoped to
// ctx: cancellation tears the deployment down. The zero DeployOptions is
// valid (default timeout, telemetry off); callers that never cancel pass
// context.Background().
func Deploy(ctx context.Context, env Environment, opts DeployOptions) (*Deployment, error) {
	return oran.Deploy(ctx, env, opts)
}

// Fleet-scale orchestration: N cells — each a network slice with its own
// testbed, agent, and O-RAN control plane — behind one coordinator, with
// cross-cell GP warm starts for joining cells. See DESIGN.md §13.
type (
	// Fleet is N cells behind one non-RT-RIC-shaped coordinator.
	Fleet = fleet.Fleet
	// FleetOptions configure NewFleet; Validate returns typed
	// *FleetOptionError values.
	FleetOptions = fleet.Options
	// FleetOptionError is the typed validation error of FleetOptions.
	FleetOptionError = fleet.OptionError
	// FleetCellConfig is one cell of a fleet: a named service slice.
	FleetCellConfig = fleet.CellConfig
	// FleetCell is one deployed member: slice env, agent, control plane.
	FleetCell = fleet.Cell
	// FleetCellResult is one cell's outcome in one fleet period.
	FleetCellResult = fleet.CellResult
	// FleetSummary aggregates a fleet's cost/violation/power roll-ups.
	FleetSummary = fleet.Summary
	// WarmStartPolicy governs cross-cell knowledge transfer: how many
	// context-similar neighbors donate history to a joining cell, and the
	// pooled-observation cap.
	WarmStartPolicy = fleet.WarmStartPolicy
	// WarmStartDonor is one candidate donor for WarmStart.
	WarmStartDonor = fleet.Donor
	// SliceConfig describes one service slice (shared with the §4.4
	// multi-slice deployment architecture).
	SliceConfig = multislice.SliceConfig
	// HistorySample is one GP training observation in normalized working
	// units — the currency of cross-cell observation pooling (see
	// Agent.History and Agent.SeedHistory).
	HistorySample = core.HistorySample
)

// NewFleet builds and deploys a fleet. The context scopes every cell's
// control plane: canceling it tears the whole fleet down.
func NewFleet(ctx context.Context, opts FleetOptions) (*Fleet, error) {
	return fleet.New(ctx, opts)
}

// FleetCells builds n uniform cell configurations from one slice
// template — the convenient input for symmetric fleets.
func FleetCells(n int, template SliceConfig) []FleetCellConfig {
	return fleet.Cells(n, template)
}

// WarmStart seeds an agent from neighbors' observation histories,
// selected by context similarity and capped by the policy; the seeded
// agent is bitwise identical to a fresh agent that observed the pooled
// history itself.
func WarmStart(a *Agent, target Context, donors []WarmStartDonor, policy WarmStartPolicy) (int, error) {
	return fleet.WarmStart(a, target, donors, policy)
}

// Experiments (§3 and §6).
type (
	// ExperimentScale sizes the figure regenerations.
	ExperimentScale = experiment.Scale
	// ResultTable is one regenerated figure as tabular data.
	ResultTable = experiment.Table
)

// PaperScale returns the paper's experiment sizes; QuickScale a reduced
// setting preserving every qualitative effect.
func PaperScale() ExperimentScale { return experiment.PaperScale() }

// QuickScale returns the reduced experiment sizes.
func QuickScale() ExperimentScale { return experiment.QuickScale() }
