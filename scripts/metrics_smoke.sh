#!/bin/sh
# metrics_smoke.sh boots the full O-RAN deployment with the metrics
# endpoint enabled, curls /metrics, and greps for one documented metric
# name per instrumented layer (core, gp, oran, testbed). It is the CI
# proof that the exposition pipeline works end to end, not just in unit
# tests.
set -eu

cd "$(dirname "$0")/.."

port=18918
log=$(mktemp)
bin=$(mktemp)
trap 'kill $pid 2>/dev/null || true; rm -f "$log" "$bin"' EXIT

# Build first and exec the binary directly: killing a `go run` wrapper can
# orphan the child, leaving a stray server behind.
go build -o "$bin" ./cmd/oran-demo
"$bin" -periods 3 -metrics "127.0.0.1:$port" -hold 120s >"$log" 2>&1 &
pid=$!

# Poll until the endpoint answers (the demo needs a moment to bind).
body=""
for _ in $(seq 1 60); do
    if body=$(curl -fsS "http://127.0.0.1:$port/metrics" 2>/dev/null); then
        break
    fi
    if ! kill -0 $pid 2>/dev/null; then
        echo "oran-demo exited before serving metrics:" >&2
        cat "$log" >&2
        exit 1
    fi
    sleep 0.5
done
if [ -z "$body" ]; then
    echo "metrics endpoint never came up:" >&2
    cat "$log" >&2
    exit 1
fi

status=0
for name in \
    edgebol_core_periods_total \
    edgebol_core_sweep_seconds \
    edgebol_gp_observations_total \
    edgebol_oran_requests_total \
    edgebol_oran_periods_total \
    edgebol_testbed_delay_seconds \
    edgebol_testbed_bs_power_watts; do
    if printf '%s\n' "$body" | grep -q "^$name\|^# TYPE $name"; then
        echo "ok: $name"
    else
        echo "MISSING: $name" >&2
        status=1
    fi
done
if [ "$status" -ne 0 ]; then
    printf '%s\n' "$body" >&2
fi
exit $status
