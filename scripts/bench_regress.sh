#!/bin/sh
# bench_regress.sh — CI benchmark-regression gate.
#
# Reruns the tracked GP-inference benchmarks in short mode (two repetitions,
# best-of merge) and checks them against the recorded BENCH_gp.json via
# `benchjson -check`: any tracked benchmark more than 25% slower than its
# recorded ns/op fails the gate. Short mode covers the exact engine at
# t ∈ {50, 200} plus the sparse inducing-point engine at t=1000, so a sparse
# sweep regression fails CI just like an exact one. The check self-skips when
# the recorded CPU differs from the runner's (cross-machine ns/op measures
# hardware, not code) and when a recorded benchmark is absent from the run
# (-short skips exact t=1000 and the sparse t ≥ 5000 horizons).
#
# Set EDGEBOL_SKIP_BENCH_CHECK=1 to skip explicitly (e.g. on known-noisy or
# heavily shared runners).
set -eu

if [ "${EDGEBOL_SKIP_BENCH_CHECK:-}" = "1" ]; then
    echo "bench_regress: skipped (EDGEBOL_SKIP_BENCH_CHECK=1)"
    exit 0
fi

cd "$(dirname "$0")/.."

out=$(mktemp)
trap 'rm -f "$out"' EXIT

go test -run '^$' -bench 'PosteriorBatch|SelectControl|GridSweep' \
    -benchtime 1x -count 2 -short ./internal/gp ./internal/core | tee "$out"

go run ./cmd/benchjson -check BENCH_gp.json -after "$out" -tolerance 1.25
