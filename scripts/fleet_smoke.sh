#!/bin/sh
# fleet_smoke.sh is the CI proof the fleet workflow holds together end to
# end through the public CLI: run a small multi-cell fleet (per-cell
# agents behind per-cell O-RAN stacks), admit a warm-started joiner, and
# check (a) the fleet completes with sane roll-ups, (b) the joiner is
# seeded from its neighbors, and (c) the warm joiner reaches its first
# safe learned period no later than the cold twin. The bitwise
# warm-start-equivalence contract itself is pinned by unit tests; this
# script exercises the user-facing composition.
set -eu

cd "$(dirname "$0")/.."

bin=$(mktemp)
trap 'rm -f "$bin"' EXIT

go build -o "$bin" ./cmd/edgebol-sim

out=$("$bin" -fleet 3 -periods 8 -grid 4 -seed 7 -quiet -warm-neighbors 2)
printf '%s\n' "$out"

printf '%s\n' "$out" | grep -q "fleet summary: 3 cells, 8 periods" || {
    echo "FAIL: fleet run did not complete 8 periods over 3 cells" >&2
    exit 1
}

# The joiner must be warm-started from a non-empty pool.
pool=$(printf '%s\n' "$out" |
    sed -n 's/^joiner: warm-started with \([0-9][0-9]*\) pooled samples.*/\1/p')
[ -n "$pool" ] && [ "$pool" -gt 0 ] || {
    echo "FAIL: joiner was not warm-started (pool=${pool:-none})" >&2
    exit 1
}
echo "ok: joiner seeded with $pool pooled samples"

# Warm must not be slower than cold (">8" sorts after any number, so a
# non-converged warm joiner fails here too).
line=$(printf '%s\n' "$out" | grep "periods to first safe learned period")
warm=$(printf '%s\n' "$line" | sed -n 's/.*warm \([0-9][0-9]*\),.*/\1/p')
cold=$(printf '%s\n' "$line" | sed -n 's/.*cold \([0-9>]*\)$/\1/p')
[ -n "$warm" ] || {
    echo "FAIL: warm joiner never reached a safe learned period: $line" >&2
    exit 1
}
case "$cold" in
">"*) : ;; # cold never converged; warm converging at all is the win
*)
    [ "$warm" -le "$cold" ] || {
        echo "FAIL: warm joiner ($warm) slower than cold ($cold)" >&2
        exit 1
    }
    ;;
esac
echo "ok: warm joiner converged in $warm periods (cold: $cold)"

echo "fleet smoke: ok"
