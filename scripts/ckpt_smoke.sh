#!/bin/sh
# ckpt_smoke.sh is the kill-and-resume smoke test for the checkpoint
# subsystem, driven entirely through the public CLI: run the closed loop
# with periodic checkpoints, "kill" it (the process exits at T/2), resume
# from the latest snapshot, and check that the resumed run (a) reports the
# right resume period, (b) completes the remaining periods, and (c) the
# ckpt inspection subcommands agree with what was written. The bitwise
# restore-equivalence itself is pinned by unit and experiment tests; this
# script is the CI proof the end-user workflow holds together.
set -eu

cd "$(dirname "$0")/.."

dir=$(mktemp -d)
bin=$(mktemp)
trap 'rm -rf "$dir" "$bin"' EXIT

go build -o "$bin" ./cmd/edgebol-sim

# Phase 1: the "victim" run — 12 periods, checkpoint every 6, then exit
# (standing in for a crash after the last committed snapshot).
"$bin" -periods 12 -grid 5 -seed 7 -quiet \
    -checkpoint-dir "$dir" -checkpoint-every 6 >/dev/null

latest=$("$bin" ckpt latest "$dir")
case "$latest" in
*ckpt-00000012.ckpt) echo "ok: latest points at the period-12 snapshot" ;;
*)
    echo "FAIL: latest = $latest, want ckpt-00000012.ckpt" >&2
    exit 1
    ;;
esac

# The LATEST pointer must name a complete, committed file (crash-safe
# ordering: data first, pointer second).
[ -s "$latest" ] || {
    echo "FAIL: latest checkpoint $latest is missing or empty" >&2
    exit 1
}

info=$("$bin" ckpt info "$latest")
printf '%s\n' "$info"
printf '%s\n' "$info" | grep -q "periods:        12" || {
    echo "FAIL: ckpt info does not report 12 periods" >&2
    exit 1
}

# Phase 2: resume from the snapshot and run 12 more periods.
out=$("$bin" -periods 24 -grid 5 -seed 7 -quiet \
    -checkpoint-dir "$dir" -checkpoint-every 6 -resume latest)
printf '%s\n' "$out" | grep -q "resumed from latest at period 12" || {
    echo "FAIL: resumed run did not start at period 12:" >&2
    printf '%s\n' "$out" >&2
    exit 1
}
printf '%s\n' "$out" | grep -q "converged cost" || {
    echo "FAIL: resumed run did not complete:" >&2
    printf '%s\n' "$out" >&2
    exit 1
}

# The resumed run keeps checkpointing past the restart.
latest2=$("$bin" ckpt latest "$dir")
case "$latest2" in
*ckpt-00000036.ckpt) echo "ok: resumed run advanced the latest snapshot" ;;
*)
    echo "FAIL: post-resume latest = $latest2, want ckpt-00000036.ckpt" >&2
    exit 1
    ;;
esac

echo "ckpt smoke: ok"
