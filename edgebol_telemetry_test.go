package edgebol

import (
	"context"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestTelemetryEndToEnd runs the full loop with a registry attached and
// checks the per-period event stream: a 50-period run must emit exactly 50
// PeriodRecords whose KPIs and cost match what Step returned.
func TestTelemetryEndToEnd(t *testing.T) {
	tb, err := NewTestbed(DefaultTestbedConfig(), []User{{SNRdB: 35}}, 7)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	tb.Instrument(reg)
	w := CostWeights{Delta1: 1, Delta2: 1}
	agent, err := NewAgent(Options{
		Grid:        GridSpec{Levels: 5, MinResolution: 0.1, MinAirtime: 0.1},
		Weights:     w,
		Constraints: Constraints{MaxDelay: 0.4, MinMAP: 0.5},
		Telemetry:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	const periods = 50
	kpis := make([]KPIs, 0, periods)
	for i := 0; i < periods; i++ {
		_, k, _, err := agent.Step(tb)
		if err != nil {
			t.Fatal(err)
		}
		kpis = append(kpis, k)
	}
	recs := reg.Periods()
	if len(recs) != periods {
		t.Fatalf("emitted %d PeriodRecords, want %d", len(recs), periods)
	}
	for i, rec := range recs {
		if rec.Period != i+1 {
			t.Fatalf("record %d has period %d", i, rec.Period)
		}
		k := kpis[i]
		if rec.Delay != k.Delay || rec.MAP != k.MAP ||
			rec.ServerPower != k.ServerPower || rec.BSPower != k.BSPower {
			t.Fatalf("record %d KPIs %+v do not match step KPIs %+v", i, rec, k)
		}
		if math.Abs(rec.Cost-w.Cost(k)) > 1e-12 {
			t.Fatalf("record %d cost %v, want %v", i, rec.Cost, w.Cost(k))
		}
		if rec.SafeSetSize <= 0 {
			t.Fatalf("record %d has empty safe set", i)
		}
		if rec.TrainSize <= 0 {
			t.Fatalf("record %d has no GP training data", i)
		}
	}
	// The counters agree with the event stream.
	snap := reg.Snapshot()
	if snap.Counters["edgebol_core_periods_total"] != periods {
		t.Fatalf("period counter %d", snap.Counters["edgebol_core_periods_total"])
	}
	if snap.Counters["edgebol_testbed_measures_total"] != periods {
		t.Fatalf("testbed counter %d", snap.Counters["edgebol_testbed_measures_total"])
	}
	if snap.Histograms[`edgebol_core_sweep_seconds`].Count != periods {
		t.Fatalf("sweep histogram count %d", snap.Histograms[`edgebol_core_sweep_seconds`].Count)
	}
}

// TestMetricsEndpointAllLayers boots the full O-RAN deployment with a
// shared registry and asserts the served /metrics exposition carries all
// four metric families: core, gp, oran, and testbed.
func TestMetricsEndpointAllLayers(t *testing.T) {
	tb, err := NewTestbed(DefaultTestbedConfig(), []User{{SNRdB: 35}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	tb.Instrument(reg)
	dep, err := Deploy(context.Background(), tb, DeployOptions{
		Timeout:     3 * time.Second,
		MetricsAddr: "127.0.0.1:0",
		Telemetry:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if dep.Registry() != reg {
		t.Fatal("deployment must adopt the supplied registry")
	}
	agent, err := NewAgent(Options{
		Grid:        GridSpec{Levels: 5, MinResolution: 0.1, MinAirtime: 0.1},
		Weights:     CostWeights{Delta1: 1, Delta2: 1},
		Constraints: Constraints{MaxDelay: 0.4, MinMAP: 0.5},
		Telemetry:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	env := dep.Env()
	for i := 0; i < 3; i++ {
		if _, _, _, err := agent.Step(env); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get("http://" + dep.MetricsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", resp.Header.Get("Content-Type"))
	}
	for _, family := range []string{
		"edgebol_core_periods_total",
		"edgebol_core_sweep_seconds_bucket",
		"edgebol_gp_observations_total",
		`edgebol_oran_requests_total{iface="a1"}`,
		`edgebol_oran_requests_total{iface="svc"}`,
		"edgebol_oran_periods_total",
		"edgebol_testbed_delay_seconds",
		"edgebol_testbed_bs_power_watts",
	} {
		if !strings.Contains(text, family) {
			t.Fatalf("/metrics missing %q:\n%s", family, text)
		}
	}
}

// TestDeployCancellation checks that canceling the Deploy context tears
// the whole control plane down.
func TestDeployCancellation(t *testing.T) {
	tb, err := NewTestbed(DefaultTestbedConfig(), []User{{SNRdB: 35}}, 9)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	dep, err := Deploy(ctx, tb, DeployOptions{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case <-dep.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not tear the deployment down")
	}
	// Measuring against a torn-down deployment fails rather than hanging.
	if _, err := dep.Env().Measure(Control{Resolution: 0.8, Airtime: 1, GPUSpeed: 0.8, MCS: 1}); err == nil {
		t.Fatal("measure succeeded after teardown")
	}
}
