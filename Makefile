# EdgeBOL build/verify entry points. `make check` is the CI gate.

GO ?= go

.PHONY: all build test race lint fmt fmt-check vet check bench metrics-smoke clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector; the concurrent
# O-RAN transport/stream/dataplane regression lives in internal/oran.
race:
	$(GO) test -race ./...

# lint runs go vet plus the domain-aware edgebol-lint suite
# (floateq, globalrand, errignore, safectrl).
lint: vet
	$(GO) run ./cmd/edgebol-lint ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: build fmt-check lint test race

# metrics-smoke boots the O-RAN deployment with -metrics, curls /metrics,
# and greps for the documented core/gp/oran/testbed metric families.
metrics-smoke:
	sh scripts/metrics_smoke.sh

# bench reruns the GP-inference benchmarks (posterior sweep over the
# 14 641-point grid and full SelectControl periods at t ∈ {50, 200, 1000})
# and regenerates BENCH_gp.json, joining the recorded pre-optimization
# baseline in results/bench_before.txt to report speedups.
bench:
	$(GO) test -run '^$$' -bench 'PosteriorBatch|SelectControl' -benchtime 3x \
		./internal/gp ./internal/core | tee results/bench_after.txt
	$(GO) run ./cmd/benchjson -before results/bench_before.txt \
		-after results/bench_after.txt -out BENCH_gp.json \
		-note "before = pre-PR serial engine (results/bench_before.txt); after = blocked, worker-sharded engine on the same host. Speedups are per-core (arithmetic only) on single-core hosts; the candidate sharding adds near-linear scaling on multi-core runners. See DESIGN.md, Performance."
	@echo "wrote BENCH_gp.json"

clean:
	$(GO) clean ./...
