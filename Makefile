# EdgeBOL build/verify entry points. `make check` is the CI gate.

GO ?= go

.PHONY: all build test race lint fmt fmt-check vet check clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector; the concurrent
# O-RAN transport/stream/dataplane regression lives in internal/oran.
race:
	$(GO) test -race ./...

# lint runs go vet plus the domain-aware edgebol-lint suite
# (floateq, globalrand, errignore, safectrl).
lint: vet
	$(GO) run ./cmd/edgebol-lint ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: build fmt-check lint test race

clean:
	$(GO) clean ./...
