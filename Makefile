# EdgeBOL build/verify entry points. `make check` is the CI gate.

GO ?= go

.PHONY: all build test race lint lint-baseline fmt fmt-check vet check bench bench-fleet bench-check sparse-equiv acq-equiv metrics-smoke ckpt-smoke fleet-smoke clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector; the concurrent
# O-RAN transport/stream/dataplane regression lives in internal/oran.
race:
	$(GO) test -race ./...

# lint runs go vet plus the domain-aware edgebol-lint suite (all nine
# analyzers; see `go run ./cmd/edgebol-lint -list`), subtracting the
# committed accepted-findings baseline.
lint: vet
	$(GO) run ./cmd/edgebol-lint -baseline .lint-baseline.json ./...

# lint-baseline regenerates the committed baseline. Regeneration is
# constrained: a finding not already in the baseline fails the target
# (fix or waive it instead), so the baseline only ever shrinks as
# accepted findings are cleaned up.
lint-baseline:
	$(GO) run ./cmd/edgebol-lint -baseline .lint-baseline.json \
		-write-baseline .lint-baseline.json ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: build fmt-check lint test race sparse-equiv acq-equiv fleet-smoke

# sparse-equiv runs the sparse-vs-exact equivalence suite on its own:
# posterior error bounds against the exact oracle, bitwise sweep-plan and
# batch agreement, auto-switch/convert equivalence, checkpoint round-trips,
# and the selection-regret replay gate. The tests also run under `test`;
# the dedicated target exists so CI names a sparse-accuracy regression
# instead of burying it in the full suite.
sparse-equiv:
	$(GO) test -count=1 -run 'TestSparse|TestConvertToSparse' ./internal/gp
	$(GO) test -count=1 -run 'TestSparse|TestAutoSwitch|TestEngine|TestCheckpointRestoreEquivalence|TestReadCheckpointInfoReportsEngine' ./internal/core
	$(GO) test -count=1 -run 'TestLongHorizon' ./internal/experiment

# acq-equiv runs the adaptive-acquisition equivalence suite: bitwise
# SweepSubset-vs-Sweep agreement, the exhaustive-vs-adaptive twin-agent
# exactness contract on small (randomized, non-uniform, split-carrying)
# grids, bounded regret within the evaluation budget on grids above the
# auto threshold, grid index-algebra properties, and the adaptive
# checkpoint round-trip.
acq-equiv:
	$(GO) test -count=1 -run 'TestSweepSubset' ./internal/gp
	$(GO) test -count=1 -run 'TestGridNonUniform|TestAcqEquiv|TestAcqAdaptive|TestAcqAuto|TestAcqCheckpoint' ./internal/core

# metrics-smoke boots the O-RAN deployment with -metrics, curls /metrics,
# and greps for the documented core/gp/oran/testbed metric families.
metrics-smoke:
	sh scripts/metrics_smoke.sh

# ckpt-smoke runs the kill-and-resume workflow through the edgebol-sim
# CLI: checkpoint every 6 periods, exit at 12, resume from the latest
# snapshot, verify the resume period and the ckpt inspection output.
ckpt-smoke:
	sh scripts/ckpt_smoke.sh

# fleet-smoke runs the multi-cell workflow through the edgebol-sim CLI:
# a 3-cell fleet (per-cell agents behind per-cell O-RAN stacks) plus a
# warm-started joiner, checking the roll-ups, the pooled seeding, and
# that the warm joiner converges no slower than a cold twin.
fleet-smoke:
	sh scripts/fleet_smoke.sh

# bench reruns the GP-inference benchmarks (posterior sweep over the
# 14 641-point grid and full SelectControl periods; exact engine at
# t ∈ {50, 200, 1000}, sparse inducing-point engine out to t = 10⁴) and
# regenerates BENCH_gp.json, joining the recorded pre-optimization
# baseline in results/bench_before.txt to report speedups.
bench:
	$(GO) test -run '^$$' -bench 'PosteriorBatch|SelectControl|GridSweep' -benchtime 3x \
		./internal/gp ./internal/core | tee results/bench_after.txt
	$(GO) run ./cmd/benchjson -before results/bench_before.txt \
		-after results/bench_after.txt -out BENCH_gp.json \
		-note "before = generic block-4 engine at the previous release (results/bench_before.txt); after = AVX fused-panel solves plus grid SweepPlan distance tables on the same host. vs_generic compares the SweepPlan against the generic path within the after run. engine=sparse entries are the m=128 inducing-point engine, flat in t; exact entries above t=1000 skip by policy. grid= entries compare the exhaustive sweep against the adaptive coarse-to-fine engine at t=200 as the control space grows to the 31^4x8 = 7.4M-candidate split-inference grid; 31^4x8 has no exhaustive twin (extrapolate x8 from grid=31p4, ~680x adaptive speedup at ~4% of candidates evaluated). See DESIGN.md 14."
	@echo "wrote BENCH_gp.json"
	$(MAKE) bench-fleet

# bench-fleet measures one fleet control period (per-cell acquisition
# sweep + the full per-cell O-RAN round trip) at 4/16/64 cells and
# records BENCH_fleet.json. No before-baseline: the fleet subsystem has
# no pre-optimization ancestor; the JSON is the tracked reference.
bench-fleet:
	$(GO) test -run '^$$' -bench 'FleetStep' -benchtime 3x \
		./internal/fleet | tee results/bench_fleet.txt
	$(GO) run ./cmd/benchjson -after results/bench_fleet.txt -out BENCH_fleet.json \
		-note "One Fleet.Step at 4/16/64 cells: every cell's full acquisition sweep (sparse engine, m=16, 3-level grid) plus its own loopback A1/E2/O1 round trip, sharded over the default worker pool. Expect near-linear growth in the cell count. See DESIGN.md 13."
	@echo "wrote BENCH_fleet.json"

# bench-check is the CI regression gate: rerun the tracked benchmarks in
# short mode and fail if any regressed >25% against BENCH_gp.json. Skips
# itself on foreign CPUs or with EDGEBOL_SKIP_BENCH_CHECK=1.
bench-check:
	sh scripts/bench_regress.sh

clean:
	$(GO) clean ./...
